//! The invoker cluster: nodes, node classes, resources, container warmth,
//! and membership churn.
//!
//! Each node models an invoker machine of some [`NodeClass`] (the paper's
//! Table-2 testbed is 16 identical A100 nodes; Appendix A tolerates
//! heterogeneity): a pool of vCPUs and vGPUs (MIG partitions), a set of
//! *warm slots* per function implementing OpenWhisk's 10-minute keep-alive
//! (§2), and time-weighted utilisation accounting. Warm slots hold no
//! compute resources (a paused container keeps memory only); a task that
//! finds a warm slot skips the Table-3 cold start.
//!
//! Clusters are dynamic: a node can [`drain`](Node::drain) (stop accepting
//! new placements; admitted work completes; its capacity stays owned until
//! run end for utilisation accounting) and new nodes can
//! [`join`](Cluster::join) mid-run.

use esg_model::{ClusterSpec, FnId, NodeClass, NodeId, Resources, SimTime};
use std::collections::HashMap;

/// A warm (or warming) container slot for one function on one node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WarmSlot {
    /// When the slot becomes usable (end of its cold start).
    pub ready_at: SimTime,
    /// When keep-alive evicts the slot.
    pub expires_at: SimTime,
    /// Whether a running task currently uses the slot.
    pub in_use: bool,
}

/// One invoker node.
#[derive(Clone, Debug)]
pub struct Node {
    /// Node id.
    pub id: NodeId,
    /// The node's class: capacity plus speed/link/price scale factors.
    pub class: NodeClass,
    /// Total resources.
    pub total: Resources,
    /// Physically unattached resources (attachment spans execution only).
    pub free: Resources,
    /// Resources committed to assigned tasks (dispatch → completion).
    /// Placement admits against commitments, not physical attachment, so a
    /// task in its init phase still claims its slot on the node.
    pub committed: Resources,
    /// Whether the node accepts new placements. Draining flips this off;
    /// already-admitted tasks run to completion.
    pub online: bool,
    warm: HashMap<FnId, Vec<WarmSlot>>,
    // Utilisation accounting: time-weighted busy- and capacity-resource
    // integrals. Capacity integrates from the node's join time, so a
    // late-joining node does not dilute utilisation for the span it did
    // not exist; a drained node keeps owning its capacity until run end.
    busy_vcpu_area_us: f64,
    busy_vgpu_area_us: f64,
    cap_vcpu_area_us: f64,
    cap_vgpu_area_us: f64,
    peak_used: Resources,
    last_change: SimTime,
}

impl Node {
    /// Creates an idle node of a synthesized baseline-speed class (the
    /// homogeneous Table-2 path).
    pub fn new(id: NodeId, total: Resources) -> Node {
        Node::with_class(id, NodeClass::custom(total), SimTime::ZERO)
    }

    /// Creates an idle node of `class`, existing from `since` (join time;
    /// utilisation accounting starts there).
    pub fn with_class(id: NodeId, class: NodeClass, since: SimTime) -> Node {
        let total = class.resources();
        Node {
            id,
            class,
            total,
            free: total,
            committed: Resources::ZERO,
            online: true,
            warm: HashMap::new(),
            busy_vcpu_area_us: 0.0,
            busy_vgpu_area_us: 0.0,
            cap_vcpu_area_us: 0.0,
            cap_vgpu_area_us: 0.0,
            peak_used: Resources::ZERO,
            last_change: since,
        }
    }

    fn accumulate(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_change).0 as f64;
        let busy = self.total - self.free;
        self.busy_vcpu_area_us += busy.vcpus as f64 * dt;
        self.busy_vgpu_area_us += busy.vgpus as f64 * dt;
        self.cap_vcpu_area_us += self.total.vcpus as f64 * dt;
        self.cap_vgpu_area_us += self.total.vgpus as f64 * dt;
        self.last_change = now;
    }

    /// Takes the node out of placement rotation: no new work lands here,
    /// warm containers are killed, admitted tasks complete normally.
    pub fn drain(&mut self, now: SimTime) {
        self.accumulate(now);
        self.online = false;
        self.warm.clear();
    }

    /// Peak simultaneous resource attachment observed so far.
    #[inline]
    pub fn peak_used(&self) -> Resources {
        self.peak_used
    }

    /// Placement-available resources: total minus commitments.
    #[inline]
    pub fn uncommitted(&self) -> Resources {
        self.total - self.committed
    }

    /// Commits capacity for a newly assigned task; false when the node's
    /// uncommitted capacity cannot host `demand`.
    pub fn commit(&mut self, demand: Resources) -> bool {
        if !self.uncommitted().contains(demand) {
            return false;
        }
        self.committed += demand;
        true
    }

    /// Returns committed capacity when an assigned task completes.
    pub fn uncommit(&mut self, demand: Resources) {
        self.committed -= demand;
        debug_assert!(self.total.contains(self.committed));
    }

    /// Attempts to allocate `demand`; returns false without change when the
    /// node lacks capacity.
    pub fn allocate(&mut self, demand: Resources, now: SimTime) -> bool {
        if !self.free.contains(demand) {
            return false;
        }
        self.accumulate(now);
        self.free -= demand;
        let used = self.total - self.free;
        self.peak_used = Resources::new(
            self.peak_used.vcpus.max(used.vcpus),
            self.peak_used.vgpus.max(used.vgpus),
        );
        true
    }

    /// Releases previously allocated resources.
    pub fn release(&mut self, demand: Resources, now: SimTime) {
        self.accumulate(now);
        self.free += demand;
        assert!(
            self.total.contains(self.free),
            "release overflow on node {}: free {} total {}",
            self.id,
            self.free,
            self.total
        );
    }

    /// True when a usable warm slot for `f` exists at `now` (ready, alive,
    /// not in use).
    pub fn has_warm(&self, f: FnId, now: SimTime) -> bool {
        self.warm.get(&f).is_some_and(|slots| {
            slots
                .iter()
                .any(|s| !s.in_use && s.ready_at <= now && s.expires_at > now)
        })
    }

    /// True when a slot for `f` exists that is warm now or will become warm
    /// (warming via pre-warm) — used to avoid duplicate pre-warms.
    pub fn has_warm_or_warming(&self, f: FnId, now: SimTime) -> bool {
        self.warm
            .get(&f)
            .is_some_and(|slots| slots.iter().any(|s| s.in_use || s.expires_at > now))
    }

    /// Claims a warm slot for a task starting at `now`. Returns true on a
    /// warm start; false means the caller pays the cold start.
    pub fn claim_warm(&mut self, f: FnId, now: SimTime) -> bool {
        if let Some(slots) = self.warm.get_mut(&f) {
            // Evict dead slots opportunistically.
            slots.retain(|s| s.in_use || s.expires_at > now);
            if let Some(slot) = slots
                .iter_mut()
                .find(|s| !s.in_use && s.ready_at <= now && s.expires_at > now)
            {
                slot.in_use = true;
                return true;
            }
        }
        false
    }

    /// Returns a slot after its task completes: the container stays warm
    /// for `keep_alive` from `now`. `was_warm_claimed` distinguishes a
    /// reused slot from a cold-started container that now becomes warm.
    pub fn return_slot(
        &mut self,
        f: FnId,
        now: SimTime,
        keep_alive: SimTime,
        was_warm_claimed: bool,
    ) {
        let slots = self.warm.entry(f).or_default();
        if was_warm_claimed {
            if let Some(slot) = slots.iter_mut().find(|s| s.in_use) {
                slot.in_use = false;
                slot.expires_at = now + keep_alive;
                return;
            }
        }
        slots.push(WarmSlot {
            ready_at: now,
            expires_at: now + keep_alive,
            in_use: false,
        });
    }

    /// Installs a pre-warmed slot that becomes ready at `ready_at`.
    pub fn prewarm(&mut self, f: FnId, ready_at: SimTime, keep_alive: SimTime) {
        self.warm.entry(f).or_default().push(WarmSlot {
            ready_at,
            expires_at: ready_at + keep_alive,
            in_use: false,
        });
    }

    /// Number of live slots (warm, warming, or in use) for `f` at `now` —
    /// the pre-warm proxy caps its pool with this.
    pub fn slot_count(&self, f: FnId, now: SimTime) -> usize {
        self.warm.get(&f).map_or(0, |slots| {
            slots
                .iter()
                .filter(|s| s.in_use || s.expires_at > now)
                .count()
        })
    }

    /// Functions with a usable warm slot at `now`.
    pub fn warm_functions(&self, now: SimTime) -> Vec<FnId> {
        let mut out = Vec::new();
        self.warm_functions_into(now, &mut out);
        out
    }

    /// Writes the functions with a usable warm slot at `now` into `out`
    /// (sorted, reusing `out`'s capacity — steady-state callers allocate
    /// nothing) and returns the next instant the set can change *without*
    /// a platform mutation: the earliest pending expiry of a usable slot
    /// or ready time of a warming slot (`SimTime(u64::MAX)` when the set
    /// can only change through an explicit mutation).
    pub fn warm_functions_into(&self, now: SimTime, out: &mut Vec<FnId>) -> SimTime {
        out.clear();
        let mut next_change = SimTime(u64::MAX);
        for (&f, slots) in &self.warm {
            let mut usable = false;
            for s in slots {
                if s.in_use {
                    continue; // leaves the pool only via return_slot
                }
                if s.ready_at > now {
                    next_change = next_change.min(s.ready_at); // warms later
                } else if s.expires_at > now {
                    usable = true;
                    next_change = next_change.min(s.expires_at); // dies later
                }
            }
            if usable {
                out.push(f);
            }
        }
        out.sort_unstable();
        next_change
    }

    /// Finalises utilisation accounting at the end of the run and returns
    /// `(vcpu_busy_area_us, vgpu_busy_area_us)`.
    pub fn finish(&mut self, now: SimTime) -> (f64, f64) {
        self.accumulate(now);
        (self.busy_vcpu_area_us, self.busy_vgpu_area_us)
    }

    /// Capacity-time integrals `(vcpu_area_us, vgpu_area_us)` accumulated
    /// so far (complete after [`finish`](Self::finish)): the utilisation
    /// denominator, which respects join times on churning clusters.
    pub fn capacity_areas(&self) -> (f64, f64) {
        (self.cap_vcpu_area_us, self.cap_vgpu_area_us)
    }
}

/// The whole invoker cluster.
#[derive(Clone, Debug)]
pub struct Cluster {
    nodes: Vec<Node>,
}

impl Cluster {
    /// Creates `n` identical nodes.
    pub fn new(n: usize, per_node: Resources) -> Cluster {
        Cluster {
            nodes: (0..n as u32)
                .map(|i| Node::new(NodeId(i), per_node))
                .collect(),
        }
    }

    /// Creates a heterogeneous cluster from explicit node capacities at
    /// baseline scale factors (Appendix A notes the algorithms tolerate
    /// heterogeneity). For classed nodes use [`Cluster::from_spec`].
    pub fn heterogeneous(capacities: &[Resources]) -> Cluster {
        Cluster {
            nodes: capacities
                .iter()
                .enumerate()
                .map(|(i, &r)| Node::new(NodeId(i as u32), r))
                .collect(),
        }
    }

    /// Materialises a declarative [`ClusterSpec`]: one node per spec
    /// entry, in [`NodeId`] order.
    pub fn from_spec(spec: &ClusterSpec) -> Cluster {
        Cluster {
            nodes: spec
                .nodes
                .iter()
                .enumerate()
                .map(|(i, c)| Node::with_class(NodeId(i as u32), c.clone(), SimTime::ZERO))
                .collect(),
        }
    }

    /// Adds a fresh (cold, idle) node of `class` at `now` and returns its
    /// id. Ids are append-only; drained nodes keep theirs.
    pub fn join(&mut self, class: NodeClass, now: SimTime) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::with_class(id, class, now));
        id
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the cluster has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable node access.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable node access.
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Iterates over nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Iterates mutably over nodes.
    pub fn nodes_mut(&mut self) -> &mut [Node] {
        &mut self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> Node {
        Node::new(NodeId(0), Resources::new(16, 7))
    }

    #[test]
    fn allocate_and_release() {
        let mut n = node();
        assert!(n.allocate(Resources::new(4, 2), SimTime::from_ms(0.0)));
        assert_eq!(n.free, Resources::new(12, 5));
        assert!(!n.allocate(Resources::new(13, 0), SimTime::from_ms(1.0)));
        n.release(Resources::new(4, 2), SimTime::from_ms(2.0));
        assert_eq!(n.free, Resources::new(16, 7));
    }

    #[test]
    #[should_panic(expected = "release overflow")]
    fn over_release_panics() {
        let mut n = node();
        n.release(Resources::new(1, 0), SimTime::from_ms(0.0));
    }

    #[test]
    fn warm_lifecycle() {
        let mut n = node();
        let f = FnId(3);
        let keep = SimTime::from_secs(600.0);
        let t0 = SimTime::from_ms(0.0);
        assert!(!n.has_warm(f, t0));
        assert!(!n.claim_warm(f, t0));
        // Cold-started task completes at t1: slot becomes warm.
        let t1 = SimTime::from_ms(100.0);
        n.return_slot(f, t1, keep, false);
        assert!(n.has_warm(f, t1));
        // Claim it; it is busy, so a second task cannot claim it.
        assert!(n.claim_warm(f, t1));
        assert!(!n.claim_warm(f, t1));
        assert!(!n.has_warm(f, t1));
        // Return after use; expiry refreshed.
        let t2 = SimTime::from_ms(500.0);
        n.return_slot(f, t2, keep, true);
        assert!(n.has_warm(f, t2));
        // Far beyond keep-alive the slot is dead.
        let late = t2 + keep + SimTime::from_ms(1.0);
        assert!(!n.has_warm(f, late));
        assert!(!n.claim_warm(f, late));
    }

    #[test]
    fn prewarm_becomes_ready_later() {
        let mut n = node();
        let f = FnId(1);
        let keep = SimTime::from_secs(600.0);
        n.prewarm(f, SimTime::from_ms(50.0), keep);
        assert!(!n.has_warm(f, SimTime::from_ms(10.0)));
        assert!(n.has_warm_or_warming(f, SimTime::from_ms(10.0)));
        assert!(n.has_warm(f, SimTime::from_ms(50.0)));
        assert!(n.claim_warm(f, SimTime::from_ms(60.0)));
    }

    #[test]
    fn warm_functions_listing() {
        let mut n = node();
        let keep = SimTime::from_secs(600.0);
        n.return_slot(FnId(2), SimTime::from_ms(1.0), keep, false);
        n.return_slot(FnId(0), SimTime::from_ms(1.0), keep, false);
        assert_eq!(
            n.warm_functions(SimTime::from_ms(2.0)),
            vec![FnId(0), FnId(2)]
        );
        assert!(n.warm_functions(SimTime::from_secs(700.0)).is_empty());
    }

    #[test]
    fn utilisation_accounting() {
        let mut n = node();
        // Busy 8 vCPUs / 2 vGPUs for 100 ms.
        assert!(n.allocate(Resources::new(8, 2), SimTime::from_ms(0.0)));
        n.release(Resources::new(8, 2), SimTime::from_ms(100.0));
        let (cpu_area, gpu_area) = n.finish(SimTime::from_ms(200.0));
        assert!((cpu_area - 8.0 * 100_000.0).abs() < 1.0);
        assert!((gpu_area - 2.0 * 100_000.0).abs() < 1.0);
    }

    #[test]
    fn cluster_construction() {
        let c = Cluster::new(16, Resources::new(16, 7));
        assert_eq!(c.len(), 16);
        assert_eq!(c.node(NodeId(5)).total, Resources::new(16, 7));
        let h = Cluster::heterogeneous(&[Resources::new(8, 2), Resources::new(32, 7)]);
        assert_eq!(h.len(), 2);
        assert_eq!(h.node(NodeId(1)).total, Resources::new(32, 7));
    }

    #[test]
    fn from_spec_and_join_and_drain() {
        use esg_model::{ClusterSpec, NodeClass};
        let mut c = Cluster::from_spec(&ClusterSpec::mixed_mig());
        assert_eq!(c.len(), 16);
        assert_eq!(c.node(NodeId(0)).class.name, "a100");
        assert_eq!(c.node(NodeId(15)).class.name, "t4");
        assert_eq!(c.node(NodeId(15)).total, Resources::new(8, 2));
        // Join a node mid-run.
        let id = c.join(NodeClass::v100(), SimTime::from_ms(500.0));
        assert_eq!(id, NodeId(16));
        assert_eq!(c.len(), 17);
        assert!(c.node(id).online);
        // Drain kills warmth and takes the node offline.
        let keep = SimTime::from_secs(600.0);
        c.node_mut(NodeId(0))
            .return_slot(FnId(1), SimTime::from_ms(10.0), keep, false);
        c.node_mut(NodeId(0)).drain(SimTime::from_ms(600.0));
        assert!(!c.node(NodeId(0)).online);
        assert!(!c.node(NodeId(0)).has_warm(FnId(1), SimTime::from_ms(700.0)));
    }

    #[test]
    fn peak_usage_tracks_high_water_mark() {
        let mut n = node();
        assert!(n.allocate(Resources::new(4, 2), SimTime::from_ms(0.0)));
        assert!(n.allocate(Resources::new(8, 1), SimTime::from_ms(1.0)));
        n.release(Resources::new(8, 1), SimTime::from_ms(2.0));
        assert!(n.allocate(Resources::new(2, 0), SimTime::from_ms(3.0)));
        assert_eq!(n.peak_used(), Resources::new(12, 3));
    }

    #[test]
    fn late_join_capacity_area_starts_at_join() {
        use esg_model::NodeClass;
        let mut n = Node::with_class(NodeId(9), NodeClass::a100(), SimTime::from_ms(100.0));
        let _ = n.finish(SimTime::from_ms(300.0));
        let (cpu_cap, gpu_cap) = n.capacity_areas();
        // 200 ms of existence × (16 vCPU, 7 vGPU).
        assert!((cpu_cap - 16.0 * 200_000.0).abs() < 1.0);
        assert!((gpu_cap - 7.0 * 200_000.0).abs() < 1.0);
    }

    #[test]
    fn two_parallel_warm_slots() {
        let mut n = node();
        let f = FnId(0);
        let keep = SimTime::from_secs(600.0);
        let t = SimTime::from_ms(10.0);
        n.return_slot(f, t, keep, false);
        n.return_slot(f, t, keep, false);
        assert!(n.claim_warm(f, t));
        assert!(n.claim_warm(f, t));
        assert!(!n.claim_warm(f, t));
    }
}
