//! The scheduler plug-in interface.
//!
//! A scheduling algorithm sees an AFW queue plus a cluster snapshot and
//! returns a ranked list of configuration candidates (ESG's configuration
//! priority queue, §3.1). The platform then asks the scheduler to *place*
//! each candidate in turn (ESG_Dispatch semantics) until one fits; on total
//! failure the queue enters the recheck list.
//!
//! Schedulers also report their search effort in *expanded configurations*;
//! [`OverheadModel`] converts effort to simulated controller time (see the
//! crate docs for the calibration to the paper's §5.3 numbers).

use crate::workflow::Job;
use esg_model::{AppId, AppSpec, Catalog, Config, FnId, NodeId, PriceModel, Resources, SimTime};
use esg_profile::{NoiseModel, ProfileTable, TransferModel};

/// Identifies one AFW queue: `(application, DAG stage)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueueKey {
    /// Application id.
    pub app: AppId,
    /// Stage index within the app's DAG.
    pub stage: usize,
}

/// A queued job as seen by schedulers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobView {
    /// Owning invocation.
    pub invocation: esg_model::InvocationId,
    /// When the job entered the queue, ms.
    pub ready_at_ms: f64,
    /// When the owning invocation arrived (start of its SLO clock), ms.
    pub invocation_arrival_ms: f64,
    /// Remaining time until the invocation's deadline, ms (can be negative).
    pub slack_ms: f64,
    /// Node holding this job's input (None = entry stage / remote gateway).
    pub pred_node: Option<NodeId>,
}

/// One node in the cluster snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeView {
    /// Node id.
    pub id: NodeId,
    /// Free resources at snapshot time (zero while draining).
    pub free: Resources,
    /// Total resources.
    pub total: Resources,
    /// Functions with a usable warm container right now.
    pub warm: Vec<FnId>,
    /// Execution-latency scale factor of the node's class (1.0 = the
    /// Table-2 baseline the profiles were measured on; larger is slower).
    pub speed: f64,
    /// Remote-transfer latency scale factor of the node's class.
    pub link_scale: f64,
    /// False while the node drains: no new placements land here.
    pub online: bool,
}

impl NodeView {
    /// A baseline-class view: full capacity free, no warmth, Table-2
    /// scale factors. Tests and custom snapshots tweak from here.
    pub fn idle(id: NodeId, total: Resources) -> NodeView {
        NodeView {
            id,
            free: total,
            total,
            warm: Vec::new(),
            speed: 1.0,
            link_scale: 1.0,
            online: true,
        }
    }

    /// True when the node has a warm container for `f`.
    pub fn has_warm(&self, f: FnId) -> bool {
        self.warm.contains(&f)
    }

    /// True when the node accepts placements and can host `demand`.
    pub fn fits(&self, demand: Resources) -> bool {
        self.online && self.free.contains(demand)
    }
}

/// Immutable cluster snapshot for one scheduling decision.
#[derive(Clone, Debug, Default)]
pub struct ClusterView {
    /// All nodes, indexed by `NodeId`.
    pub nodes: Vec<NodeView>,
}

impl ClusterView {
    /// Nodes able to host `demand`.
    pub fn feasible(&self, demand: Resources) -> impl Iterator<Item = &NodeView> {
        self.nodes.iter().filter(move |n| n.fits(demand))
    }

    /// The feasible node with the most free resources (weighted), used for
    /// cold placement and the forced-minimum fallback. Deterministic
    /// tie-break on node id.
    pub fn most_free(&self, demand: Resources) -> Option<NodeId> {
        self.feasible(demand)
            .max_by(|a, b| {
                a.free
                    .weighted(1.0, 16.0 / 7.0)
                    .total_cmp(&b.free.weighted(1.0, 16.0 / 7.0))
                    .then(b.id.0.cmp(&a.id.0))
            })
            .map(|n| n.id)
    }

    /// The execution-latency scale factor of `node` (1.0 when out of
    /// range, which cannot happen for ids taken from this snapshot).
    pub fn speed_of(&self, node: NodeId) -> f64 {
        self.nodes.get(node.index()).map_or(1.0, |n| n.speed)
    }

    /// The fastest (lowest speed factor) feasible node; ties broken by
    /// most free weighted resources, then node id. Speed-aware schedulers
    /// use this to bound how fast the cluster can run `demand` right now.
    pub fn fastest_fit(&self, demand: Resources) -> Option<NodeId> {
        self.feasible(demand)
            .min_by(|a, b| {
                a.speed
                    .total_cmp(&b.speed)
                    .then(
                        b.free
                            .weighted(1.0, 16.0 / 7.0)
                            .total_cmp(&a.free.weighted(1.0, 16.0 / 7.0)),
                    )
                    .then(a.id.0.cmp(&b.id.0))
            })
            .map(|n| n.id)
    }
}

/// Everything a scheduler may consult when deciding.
pub struct SchedCtx<'a> {
    /// Current simulated time, ms.
    pub now_ms: f64,
    /// The queue under consideration.
    pub key: QueueKey,
    /// Queued jobs, oldest first.
    pub jobs: &'a [JobView],
    /// The function this queue's stage runs.
    pub function: FnId,
    /// End-to-end SLO of the application, ms.
    pub slo_ms: f64,
    /// Base latency `L` of the application, ms.
    pub base_latency_ms: f64,
    /// Smoothed inter-arrival interval of jobs into this queue, ms
    /// (`None` until two arrivals have been observed). Batching policies
    /// use it to predict how long forming a larger batch would take.
    pub queue_interval_ms: Option<f64>,
    /// Cluster snapshot.
    pub cluster: &'a ClusterView,
    /// Performance profiles.
    pub profiles: &'a ProfileTable,
    /// Application specs (index by `AppId`).
    pub apps: &'a [AppSpec],
    /// Function catalog.
    pub catalog: &'a Catalog,
    /// Pricing.
    pub price: &'a PriceModel,
    /// Transfer model (for locality-aware cost estimates).
    pub transfer: &'a TransferModel,
    /// Noise model (schedulers may consult `p95_factor`, as Orion does).
    pub noise: &'a NoiseModel,
}

impl SchedCtx<'_> {
    /// The app spec of this queue.
    pub fn app_spec(&self) -> &AppSpec {
        &self.apps[self.key.app.index()]
    }

    /// Longest waiting time among queued jobs (Algorithm 1's `w`), ms.
    pub fn longest_wait_ms(&self) -> f64 {
        self.jobs
            .first()
            .map(|j| (self.now_ms - j.ready_at_ms).max(0.0))
            .unwrap_or(0.0)
    }

    /// Elapsed SLO time of the oldest invocation in the queue, ms.
    pub fn oldest_elapsed_ms(&self) -> f64 {
        self.jobs
            .iter()
            .map(|j| self.now_ms - j.invocation_arrival_ms)
            .fold(0.0, f64::max)
    }
}

/// The outcome of a scheduling decision.
#[derive(Clone, Debug, Default)]
pub struct Outcome {
    /// Ranked configuration candidates (best first). Empty = skip this
    /// queue for now.
    pub candidates: Vec<Config>,
    /// Search effort in expanded configurations (drives simulated
    /// overhead).
    pub expansions: u64,
    /// The batch size the scheduler *planned* (pre-adaptation). When it
    /// exceeds the queue length at dispatch, the platform records a
    /// configuration miss (Table 4) and clamps.
    pub planned_batch: Option<u32>,
}

impl Outcome {
    /// An outcome that skips the queue.
    pub fn skip() -> Outcome {
        Outcome::default()
    }

    /// A single-candidate outcome.
    pub fn single(config: Config, expansions: u64) -> Outcome {
        Outcome {
            candidates: vec![config],
            expansions,
            planned_batch: Some(config.batch),
        }
    }
}

/// Self-reported scheduler counters, collected into `ExperimentResult`
/// at the end of a run.
///
/// The interesting story is the plan cache: a scheduler that memoises its
/// searches reports how often dispatch was answered from the memo instead
/// of a fresh search. Cache hits replay the memoised expansion count, so
/// the *simulated* overhead model stays identical between cached and
/// uncached runs (results are comparable bit-for-bit); the saving is
/// real wall-clock planning time, measured by `cargo bench --bench
/// overhead`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Full searches actually executed (cache misses + uncached runs).
    pub searches: u64,
    /// Dispatch decisions answered from the plan cache.
    pub plan_cache_hits: u64,
    /// Plan-cache lookups that fell through to a real search.
    pub plan_cache_misses: u64,
    /// Plan-cache entries dropped by the LRU bound.
    pub plan_cache_evictions: u64,
    /// Wholesale plan-cache invalidations (churn notifications).
    pub plan_cache_invalidations: u64,
}

impl SchedulerStats {
    /// Fraction of cache lookups answered from the memo (0 when the
    /// scheduler never consulted a cache).
    pub fn plan_cache_hit_rate(&self) -> f64 {
        let lookups = self.plan_cache_hits + self.plan_cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.plan_cache_hits as f64 / lookups as f64
        }
    }
}

/// Feature matrix entries (paper Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Capabilities {
    /// Schedules fractions of GPUs (vGPUs).
    pub gpu_sharing: bool,
    /// Considers inter-function relations along the workflow.
    pub inter_function_relation: bool,
    /// Adapts decisions to runtime state between stages.
    pub adaptive: bool,
    /// Places tasks for data locality.
    pub data_locality: bool,
    /// Pre-warms containers.
    pub pre_warming: bool,
}

/// A pluggable scheduling algorithm.
pub trait Scheduler {
    /// Display name (figure legends).
    fn name(&self) -> &'static str;

    /// Table-1 feature row.
    fn capabilities(&self) -> Capabilities;

    /// Chooses ranked configuration candidates for the queue.
    fn schedule(&mut self, ctx: &SchedCtx<'_>) -> Outcome;

    /// Chooses a node for `config`, or `None` when nothing fits. Called for
    /// each candidate in rank order, and again on recheck rounds.
    fn place(&mut self, ctx: &SchedCtx<'_>, config: Config) -> Option<NodeId>;

    /// Notification that the platform dispatched a task from queue `key`
    /// covering `dispatched` invocations. Pre-planning schedulers (Orion,
    /// Aquatope) stash per-invocation plans here.
    fn notify_dispatch(
        &mut self,
        key: QueueKey,
        dispatched: &[esg_model::InvocationId],
        config: Config,
        node: NodeId,
    ) {
        let _ = (key, dispatched, config, node);
    }

    /// Notification that cluster membership changed: `node` drained
    /// (`joined == false`) or joined (`joined == true`). Caching
    /// schedulers invalidate speed-dependent memos here.
    fn notify_churn(&mut self, node: NodeId, joined: bool) {
        let _ = (node, joined);
    }

    /// End-of-run counters, copied into `ExperimentResult::scheduler_stats`
    /// by the platform. The default reports nothing.
    fn stats(&self) -> SchedulerStats {
        SchedulerStats::default()
    }
}

/// Converts search effort (expanded configurations) into simulated
/// controller time.
///
/// Calibration: §5.3 reports a brute-force search of 256³ ≈ 16.8 M paths at
/// 7258 ms → ≈ 0.4326 µs per expansion; a fixed base covers queue handling
/// and dispatch messaging.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OverheadModel {
    /// Fixed cost per decision, µs.
    pub base_us: f64,
    /// Cost per expanded configuration, µs.
    pub us_per_expansion: f64,
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel {
            base_us: 200.0,
            us_per_expansion: 7_258_000.0 / (256.0f64 * 256.0 * 256.0),
        }
    }
}

impl OverheadModel {
    /// A zero-overhead model (for the "w/o searching overhead" variants).
    pub fn free() -> Self {
        OverheadModel {
            base_us: 0.0,
            us_per_expansion: 0.0,
        }
    }

    /// Simulated decision time.
    pub fn decision_time(&self, expansions: u64) -> SimTime {
        SimTime::from_us((self.base_us + self.us_per_expansion * expansions as f64).round() as u64)
    }
}

/// OpenWhisk's home-invoker hash (§2): a deterministic hash of the
/// function's identity (namespace ≈ app, action ≈ stage) onto a node.
pub fn home_node(key: QueueKey, num_nodes: usize) -> NodeId {
    // FNV-1a over the key bytes; any stable hash works.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in key
        .app
        .0
        .to_le_bytes()
        .into_iter()
        .chain((key.stage as u64).to_le_bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    NodeId((h % num_nodes as u64) as u32)
}

/// Shared placement policy: locality first (§3.4). Tries, in order, the
/// preferred (predecessor) node, the home invoker, any warm invoker with
/// capacity, and finally the cold invoker with the most free resources.
pub fn place_locality_first(
    ctx: &SchedCtx<'_>,
    demand: Resources,
    preferred: Option<NodeId>,
) -> Option<NodeId> {
    let home = home_node(ctx.key, ctx.cluster.nodes.len());
    if let Some(p) = preferred {
        if ctx.cluster.nodes[p.index()].fits(demand) {
            return Some(p);
        }
    }
    if ctx.cluster.nodes[home.index()].fits(demand) {
        return Some(home);
    }
    // Warm invokers with capacity (deterministic id order).
    for n in &ctx.cluster.nodes {
        if n.has_warm(ctx.function) && n.fits(demand) {
            return Some(n.id);
        }
    }
    ctx.cluster.most_free(demand)
}

/// Shared placement policy: minimise leftover fragmentation (INFless-style
/// best fit over weighted resources).
pub fn place_min_fragmentation(
    cluster: &ClusterView,
    demand: Resources,
    cpu_weight: f64,
    gpu_weight: f64,
) -> Option<NodeId> {
    cluster
        .feasible(demand)
        .min_by(|a, b| {
            let left_a = (a.free - demand).weighted(cpu_weight, gpu_weight);
            let left_b = (b.free - demand).weighted(cpu_weight, gpu_weight);
            left_a.total_cmp(&left_b).then(a.id.0.cmp(&b.id.0))
        })
        .map(|n| n.id)
}

/// Converts queued [`Job`]s into scheduler-facing views.
pub fn job_views(
    jobs: impl Iterator<Item = Job>,
    now: SimTime,
    arrivals: impl Fn(esg_model::InvocationId) -> (SimTime, SimTime),
) -> Vec<JobView> {
    jobs.map(|j| {
        let (arrived, deadline) = arrivals(j.invocation);
        JobView {
            invocation: j.invocation,
            ready_at_ms: j.ready_at.as_ms(),
            invocation_arrival_ms: arrived.as_ms(),
            slack_ms: deadline.as_ms() - now.as_ms(),
            pred_node: j.pred_node,
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_model_calibration() {
        let m = OverheadModel::default();
        // Brute force over a 3-stage group with 256 configs each.
        let t = m.decision_time(256 * 256 * 256);
        assert!(
            (t.as_ms() - 7258.0).abs() < 1.0,
            "brute force should cost ~7258 ms, got {}",
            t.as_ms()
        );
        // A pruned search of ~10k expansions costs a few ms.
        let t = m.decision_time(10_000);
        assert!(t.as_ms() > 3.0 && t.as_ms() < 6.0, "{}", t.as_ms());
    }

    #[test]
    fn free_overhead_is_zero() {
        assert_eq!(
            OverheadModel::free().decision_time(1_000_000),
            SimTime::ZERO
        );
    }

    #[test]
    fn home_node_is_stable_and_spread() {
        let a = home_node(
            QueueKey {
                app: AppId(0),
                stage: 0,
            },
            16,
        );
        let b = home_node(
            QueueKey {
                app: AppId(0),
                stage: 0,
            },
            16,
        );
        assert_eq!(a, b);
        // Different stages of different apps spread across nodes.
        let mut distinct = std::collections::HashSet::new();
        for app in 0..4u32 {
            for stage in 0..5usize {
                distinct.insert(home_node(
                    QueueKey {
                        app: AppId(app),
                        stage,
                    },
                    16,
                ));
            }
        }
        assert!(
            distinct.len() >= 8,
            "only {} distinct homes",
            distinct.len()
        );
    }

    #[test]
    fn cluster_view_queries() {
        let mut n0 = NodeView::idle(NodeId(0), Resources::new(16, 7));
        n0.free = Resources::new(2, 1);
        n0.warm = vec![FnId(1)];
        let mut n1 = NodeView::idle(NodeId(1), Resources::new(16, 7));
        n1.free = Resources::new(10, 3);
        let view = ClusterView {
            nodes: vec![n0, n1],
        };
        assert_eq!(view.feasible(Resources::new(4, 1)).count(), 1);
        assert_eq!(view.most_free(Resources::new(1, 1)), Some(NodeId(1)));
        assert_eq!(view.most_free(Resources::new(32, 1)), None);
        assert!(view.nodes[0].has_warm(FnId(1)));
        assert!(!view.nodes[1].has_warm(FnId(1)));
    }

    #[test]
    fn offline_nodes_are_never_feasible() {
        let mut n0 = NodeView::idle(NodeId(0), Resources::new(16, 7));
        n0.online = false;
        n0.free = Resources::ZERO; // the platform zeroes a draining node's view
        let n1 = NodeView::idle(NodeId(1), Resources::new(4, 2));
        let view = ClusterView {
            nodes: vec![n0, n1],
        };
        assert!(!view.nodes[0].fits(Resources::new(1, 0)));
        assert_eq!(view.feasible(Resources::new(1, 1)).count(), 1);
        assert_eq!(view.most_free(Resources::new(1, 1)), Some(NodeId(1)));
        assert_eq!(
            place_min_fragmentation(&view, Resources::new(1, 1), 1.0, 2.0),
            Some(NodeId(1))
        );
    }

    #[test]
    fn fastest_fit_prefers_low_speed_factor() {
        let mut slow = NodeView::idle(NodeId(0), Resources::new(16, 7));
        slow.speed = 2.2;
        let fast = NodeView::idle(NodeId(1), Resources::new(8, 2));
        let view = ClusterView {
            nodes: vec![slow, fast],
        };
        assert_eq!(view.fastest_fit(Resources::new(4, 1)), Some(NodeId(1)));
        // Demand only the slow node can host falls back to it.
        assert_eq!(view.fastest_fit(Resources::new(12, 4)), Some(NodeId(0)));
        assert_eq!(view.speed_of(NodeId(0)), 2.2);
        assert_eq!(view.speed_of(NodeId(1)), 1.0);
    }

    #[test]
    fn min_fragmentation_picks_tightest_fit() {
        let n0 = NodeView::idle(NodeId(0), Resources::new(16, 7));
        let mut n1 = NodeView::idle(NodeId(1), Resources::new(16, 7));
        n1.free = Resources::new(4, 2);
        let view = ClusterView {
            nodes: vec![n0, n1],
        };
        // Best fit leaves the least behind -> node 1.
        assert_eq!(
            place_min_fragmentation(&view, Resources::new(4, 2), 1.0, 2.0),
            Some(NodeId(1))
        );
    }

    #[test]
    fn outcome_constructors() {
        let s = Outcome::skip();
        assert!(s.candidates.is_empty());
        let o = Outcome::single(Config::new(2, 1, 1), 5);
        assert_eq!(o.candidates.len(), 1);
        assert_eq!(o.planned_batch, Some(2));
        assert_eq!(o.expansions, 5);
    }
}
