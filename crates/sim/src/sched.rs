//! The scheduler plug-in interface: rounds, events, and queries.
//!
//! The platform and schedulers meet at three seams:
//!
//! * **State** — schedulers borrow the platform's incrementally
//!   maintained [`ClusterState`] (see `crate::state`); nothing is
//!   rebuilt or cloned per decision.
//! * **Rounds** — each controller round presents *all* eligible queues
//!   through a [`RoundCtx`]; [`Scheduler::schedule_round`] returns ranked
//!   decisions `(queue, Outcome)` which the platform applies in order
//!   (placement via [`Scheduler::place`], then dispatch). The provided
//!   default replays the classic one-queue-at-a-time contract — it
//!   decides only the first eligible queue via [`Scheduler::schedule`]
//!   and lets the platform re-invoke the round with the rest, so
//!   single-queue algorithms migrate mechanically while cross-queue
//!   policies (global admission, cross-queue packing) can override the
//!   round and see the whole queue set at once.
//! * **Events** — the platform narrates its progress through one
//!   [`Scheduler::on_event`] hook carrying typed [`SchedulerEvent`]s
//!   (arrivals, dispatches, completions, churn, recheck ticks), which
//!   subsumes the former ad-hoc `notify_dispatch`/`notify_churn` pair.
//!
//! A scheduling algorithm still answers the §3.1 question per queue: a
//! ranked list of configuration candidates (ESG's configuration priority
//! queue) that the platform tries to *place* in rank order
//! (ESG_Dispatch semantics) until one fits; on total failure the queue
//! enters the recheck list. Schedulers report their search effort in
//! *expanded configurations*; [`OverheadModel`] converts effort to
//! simulated controller time (see the crate docs for the calibration to
//! the paper's §5.3 numbers).

use crate::policy::{AdmissionDecision, AdmissionPlan, PolicySpec, PolicyStack, RankedQueues};
use crate::policy::{PolicyStats, RoundPolicy, ShedReason};
use crate::shard::ShardStats;
use crate::state::ClusterState;
use crate::workflow::Job;
use esg_model::{
    AppId, AppSpec, Catalog, Config, FnId, InvocationId, NodeId, PriceModel, Resources, SimTime,
};
use esg_profile::{NoiseModel, ProfileTable, TransferModel};

/// Identifies one AFW queue: `(application, DAG stage)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueueKey {
    /// Application id.
    pub app: AppId,
    /// Stage index within the app's DAG.
    pub stage: usize,
}

/// A queued job as seen by schedulers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobView {
    /// Owning invocation.
    pub invocation: InvocationId,
    /// When the job entered the queue, ms.
    pub ready_at_ms: f64,
    /// When the owning invocation arrived (start of its SLO clock), ms.
    pub invocation_arrival_ms: f64,
    /// Remaining time until the invocation's deadline, ms (can be negative).
    pub slack_ms: f64,
    /// Node holding this job's input (None = entry stage / remote gateway).
    pub pred_node: Option<NodeId>,
}

/// Everything a scheduler may consult when deciding one queue.
pub struct SchedCtx<'a> {
    /// Current simulated time, ms.
    pub now_ms: f64,
    /// The queue under consideration.
    pub key: QueueKey,
    /// Queued jobs, oldest first.
    pub jobs: &'a [JobView],
    /// The function this queue's stage runs.
    pub function: FnId,
    /// End-to-end SLO of the application, ms.
    pub slo_ms: f64,
    /// Base latency `L` of the application, ms.
    pub base_latency_ms: f64,
    /// Smoothed inter-arrival interval of jobs into this queue, ms
    /// (`None` until two arrivals have been observed). Batching policies
    /// use it to predict how long forming a larger batch would take.
    pub queue_interval_ms: Option<f64>,
    /// The platform's live cluster state (borrowed, never copied).
    pub cluster: &'a ClusterState,
    /// Performance profiles.
    pub profiles: &'a ProfileTable,
    /// Application specs (index by `AppId`).
    pub apps: &'a [AppSpec],
    /// Function catalog.
    pub catalog: &'a Catalog,
    /// Pricing.
    pub price: &'a PriceModel,
    /// Transfer model (for locality-aware cost estimates).
    pub transfer: &'a TransferModel,
    /// Noise model (schedulers may consult `p95_factor`, as Orion does).
    pub noise: &'a NoiseModel,
}

impl SchedCtx<'_> {
    /// The app spec of this queue.
    pub fn app_spec(&self) -> &AppSpec {
        &self.apps[self.key.app.index()]
    }

    /// Longest waiting time among queued jobs (Algorithm 1's `w`), ms.
    pub fn longest_wait_ms(&self) -> f64 {
        self.jobs
            .first()
            .map(|j| (self.now_ms - j.ready_at_ms).max(0.0))
            .unwrap_or(0.0)
    }

    /// Elapsed SLO time of the oldest invocation in the queue, ms.
    pub fn oldest_elapsed_ms(&self) -> f64 {
        self.jobs
            .iter()
            .map(|j| self.now_ms - j.invocation_arrival_ms)
            .fold(0.0, f64::max)
    }
}

/// One eligible queue as presented to a scheduling round: the per-queue
/// slice of [`SchedCtx`] (the shared references live on [`RoundCtx`]).
#[derive(Clone, Copy, Debug)]
pub struct QueueView<'a> {
    /// The queue.
    pub key: QueueKey,
    /// Queued jobs, oldest first.
    pub jobs: &'a [JobView],
    /// The function this queue's stage runs.
    pub function: FnId,
    /// End-to-end SLO of the owning application, ms.
    pub slo_ms: f64,
    /// Base latency `L` of the owning application, ms.
    pub base_latency_ms: f64,
    /// Smoothed inter-arrival interval of jobs into this queue, ms.
    pub queue_interval_ms: Option<f64>,
}

/// One controller round: every eligible queue, plus the shared
/// environment references. Queues appear in the controller's scan order
/// (the order the classic contract decided them in).
pub struct RoundCtx<'a> {
    /// Current simulated time, ms.
    pub now_ms: f64,
    /// All eligible queues this round (non-empty, not busy, not parked
    /// on the recheck list), in scan order.
    pub queues: &'a [QueueView<'a>],
    /// The platform's live cluster state (borrowed, never copied).
    pub cluster: &'a ClusterState,
    /// Performance profiles.
    pub profiles: &'a ProfileTable,
    /// Application specs (index by `AppId`).
    pub apps: &'a [AppSpec],
    /// Function catalog.
    pub catalog: &'a Catalog,
    /// Pricing.
    pub price: &'a PriceModel,
    /// Transfer model.
    pub transfer: &'a TransferModel,
    /// Noise model.
    pub noise: &'a NoiseModel,
    /// Live data-plane occupancy (`Some` only when the contended data
    /// plane is enabled via `SimConfig::data_plane`). Bandwidth-aware
    /// policies fold its per-node contention estimates into their
    /// ranking; everything else ignores it.
    pub dataplane: Option<&'a crate::dataplane::DataPlaneView>,
    /// The node→server map (`Some` only when the cluster declares a
    /// [`ServerTopology`](esg_model::ServerTopology)). The static
    /// pinning tier and locality-aware policies use it to keep hot
    /// workflows intra-server; flat clusters leave it `None`.
    pub servers: Option<&'a crate::pinning::ServerMap>,
}

impl RoundCtx<'_> {
    /// The single-queue context of `queues[i]` — what
    /// [`Scheduler::schedule`] and [`Scheduler::place`] consume.
    pub fn sched_ctx(&self, i: usize) -> SchedCtx<'_> {
        let q = &self.queues[i];
        SchedCtx {
            now_ms: self.now_ms,
            key: q.key,
            jobs: q.jobs,
            function: q.function,
            slo_ms: q.slo_ms,
            base_latency_ms: q.base_latency_ms,
            queue_interval_ms: q.queue_interval_ms,
            cluster: self.cluster,
            profiles: self.profiles,
            apps: self.apps,
            catalog: self.catalog,
            price: self.price,
            transfer: self.transfer,
            noise: self.noise,
        }
    }
}

/// A typed control-plane notification, delivered through
/// [`Scheduler::on_event`] as the platform applies state changes.
///
/// Events are *informational*: the default handler ignores them, and a
/// scheduler that ignores them behaves exactly like one written against
/// the former `notify_dispatch`/`notify_churn` pair (which
/// `Dispatched`/`Churn` subsume). Pre-planning schedulers stash
/// per-invocation plans on `Dispatched`; caching schedulers invalidate
/// speed-dependent memos on `Churn`.
#[derive(Clone, Copy, Debug)]
pub enum SchedulerEvent<'a> {
    /// A job entered queue `key` (arrival or upstream-stage completion).
    JobArrived {
        /// The queue the job joined.
        key: QueueKey,
        /// The owning invocation.
        invocation: InvocationId,
        /// Simulated time, ms.
        now_ms: f64,
    },
    /// The platform dispatched a task from queue `key` covering
    /// `invocations`, as `config` on `node`.
    Dispatched {
        /// The drained queue.
        key: QueueKey,
        /// The invocations covered by the dispatched batch.
        invocations: &'a [InvocationId],
        /// The dispatched configuration (batch already clamped).
        config: Config,
        /// The hosting node.
        node: NodeId,
        /// Simulated time, ms.
        now_ms: f64,
    },
    /// A task of queue `key` finished on `node` and released its
    /// resources.
    TaskCompleted {
        /// The queue whose task completed.
        key: QueueKey,
        /// The node that hosted it.
        node: NodeId,
        /// The completed task's configuration.
        config: Config,
        /// Simulated time, ms.
        now_ms: f64,
    },
    /// Cluster membership changed: `node` drained (`joined == false`) or
    /// joined (`joined == true`).
    Churn {
        /// The affected node.
        node: NodeId,
        /// Join (true) vs drain (false).
        joined: bool,
        /// Simulated time, ms.
        now_ms: f64,
    },
    /// An admission policy shed queue `key`: the listed invocations were
    /// killed and their jobs (including sibling-stage jobs in other
    /// queues) dropped.
    QueueShed {
        /// The shed queue.
        key: QueueKey,
        /// The invocations killed by this shed.
        invocations: &'a [InvocationId],
        /// Why the admission stage dropped the queue.
        reason: ShedReason,
        /// Simulated time, ms.
        now_ms: f64,
    },
    /// The platform is about to retry the parked (recheck) queues.
    RecheckTick {
        /// Simulated time, ms.
        now_ms: f64,
    },
    /// A data-plane transfer flow activated on `node`'s bandwidth pools
    /// (only emitted when `SimConfig::data_plane` is set).
    TransferStarted {
        /// The destination node.
        node: NodeId,
        /// Total MB of the aggregated flow.
        mb: f64,
        /// Simulated time, ms.
        now_ms: f64,
    },
    /// A dispatched batch's transfer could not reserve staging space on
    /// `node` and queued (FIFO) for the buffer — delayed, never dropped.
    TransferQueued {
        /// The destination node.
        node: NodeId,
        /// Total MB of the aggregated flow.
        mb: f64,
        /// Simulated time, ms.
        now_ms: f64,
    },
    /// A data-plane transfer flow completed on `node` and released its
    /// pool memberships and staging reservation.
    TransferCompleted {
        /// The destination node.
        node: NodeId,
        /// Total MB of the aggregated flow.
        mb: f64,
        /// Simulated time, ms.
        now_ms: f64,
    },
    /// One shard of the sharded control plane finished committing a
    /// staged round: `commits` decisions landed, `conflicts` staged
    /// placements were invalidated by another shard's commit, and
    /// `retries` of those were sent back for re-staging (the rest fell
    /// back to the classic recheck park). Only emitted by the sharded
    /// driver (`SimConfig::shards > 1` or `force_sharded`); dashboards
    /// use it to spot cross-shard conflict storms without polling
    /// [`SchedulerStats`].
    ShardCommit {
        /// The committing shard's index.
        shard: usize,
        /// Decisions that landed in this commit phase.
        commits: u64,
        /// Staged placements invalidated by cross-shard movement.
        conflicts: u64,
        /// Conflicted decisions handed back for a bounded retry.
        retries: u64,
        /// Simulated time, ms.
        now_ms: f64,
    },
}

impl SchedulerEvent<'_> {
    /// The event's simulated time, ms (every variant carries one).
    ///
    /// ```
    /// use esg_sim::SchedulerEvent;
    /// assert_eq!(SchedulerEvent::RecheckTick { now_ms: 7.5 }.now_ms(), 7.5);
    /// ```
    pub fn now_ms(&self) -> f64 {
        match *self {
            SchedulerEvent::JobArrived { now_ms, .. }
            | SchedulerEvent::Dispatched { now_ms, .. }
            | SchedulerEvent::TaskCompleted { now_ms, .. }
            | SchedulerEvent::Churn { now_ms, .. }
            | SchedulerEvent::QueueShed { now_ms, .. }
            | SchedulerEvent::RecheckTick { now_ms }
            | SchedulerEvent::TransferStarted { now_ms, .. }
            | SchedulerEvent::TransferQueued { now_ms, .. }
            | SchedulerEvent::TransferCompleted { now_ms, .. }
            | SchedulerEvent::ShardCommit { now_ms, .. } => now_ms,
        }
    }
}

/// The outcome of a scheduling decision.
#[derive(Clone, Debug, Default)]
pub struct Outcome {
    /// Ranked configuration candidates (best first). Empty = skip this
    /// queue for now.
    pub candidates: Vec<Config>,
    /// Search effort in expanded configurations (drives simulated
    /// overhead).
    pub expansions: u64,
    /// The batch size the scheduler *planned* (pre-adaptation). When it
    /// exceeds the queue length at dispatch, the platform records a
    /// configuration miss (Table 4) and clamps.
    pub planned_batch: Option<u32>,
    /// For skip outcomes (no candidates): do not re-decide this queue
    /// before this instant, ms. `None` keeps the platform's idle
    /// back-off. Produced by `AdmissionDecision::Defer`.
    pub defer_until_ms: Option<f64>,
    /// Admission verdict: drop the queue's jobs (their invocations are
    /// killed; see `SchedulerEvent::QueueShed`). Candidates are ignored.
    pub shed: Option<ShedReason>,
}

impl Outcome {
    /// An outcome that skips the queue.
    pub fn skip() -> Outcome {
        Outcome::default()
    }

    /// A single-candidate outcome.
    pub fn single(config: Config, expansions: u64) -> Outcome {
        Outcome {
            candidates: vec![config],
            expansions,
            planned_batch: Some(config.batch),
            ..Outcome::default()
        }
    }

    /// A skip outcome that parks the queue until `until_ms`.
    pub fn defer(until_ms: f64) -> Outcome {
        Outcome {
            defer_until_ms: Some(until_ms),
            ..Outcome::default()
        }
    }

    /// A shed outcome: the platform drops the queue's jobs.
    pub fn shed(reason: ShedReason) -> Outcome {
        Outcome {
            shed: Some(reason),
            ..Outcome::default()
        }
    }
}

/// Self-reported scheduler counters, collected into `ExperimentResult`
/// at the end of a run.
///
/// The interesting story is the plan cache: a scheduler that memoises its
/// searches reports how often dispatch was answered from the memo instead
/// of a fresh search. Cache hits replay the memoised expansion count, so
/// the *simulated* overhead model stays identical between cached and
/// uncached runs (results are comparable bit-for-bit); the saving is
/// real wall-clock planning time, measured by `cargo bench --bench
/// overhead`.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Full searches actually executed (cache misses + uncached runs).
    pub searches: u64,
    /// Dispatch decisions answered from the plan cache.
    pub plan_cache_hits: u64,
    /// Plan-cache lookups that fell through to a real search.
    pub plan_cache_misses: u64,
    /// Plan-cache entries dropped by the LRU bound.
    pub plan_cache_evictions: u64,
    /// Wholesale plan-cache invalidations (churn notifications).
    pub plan_cache_invalidations: u64,
    /// Round-policy counters (sheds, defers), embedded as the whole
    /// [`PolicyStats`] struct rather than copied field by field — a
    /// counter added to `PolicyStats` can no longer be silently dropped
    /// on the way into `ExperimentResult` (the PR-5 fields were copied
    /// one by one, which is exactly how a new field gets forgotten).
    pub policy: PolicyStats,
    /// Sharded control-plane counters (staging rounds, commits,
    /// conflicts, retries); all zero under the classic single driver.
    pub shards: ShardStats,
    /// Static-pinning-tier counters (hits, misses, re-pins); all zero
    /// for purely dynamic schedulers.
    pub pinned: crate::pinning::PinnedStats,
}

impl SchedulerStats {
    /// Fraction of cache lookups answered from the memo (0 when the
    /// scheduler never consulted a cache).
    pub fn plan_cache_hit_rate(&self) -> f64 {
        let lookups = self.plan_cache_hits + self.plan_cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.plan_cache_hits as f64 / lookups as f64
        }
    }

    /// Installs a round policy's counters wholesale (schedulers call
    /// this from `Scheduler::stats`).
    pub fn with_policy(mut self, p: PolicyStats) -> SchedulerStats {
        self.policy = p;
        self
    }

    /// Installs the sharded control plane's counters wholesale (the
    /// platform calls this when collecting end-of-run stats).
    pub fn with_shards(mut self, s: ShardStats) -> SchedulerStats {
        self.shards = s;
        self
    }

    /// Installs the static pinning tier's counters wholesale (hybrid
    /// schedulers call this from `Scheduler::stats`).
    pub fn with_pinned(mut self, p: crate::pinning::PinnedStats) -> SchedulerStats {
        self.pinned = p;
        self
    }
}

/// Hand-rolled `Debug` that matches the pre-policy derive output
/// byte-for-byte whenever the policy and shard counters are zero: the
/// golden control-plane digests hash `ExperimentResult`'s Debug dump
/// (which embeds this struct), and the classic stack under the classic
/// single-shard driver must stay bit-identical to the pinned
/// pre-redesign baseline. `shards.commit_wall_us` is host wall time and
/// never printed, so multi-shard runs stay digest-deterministic too.
impl std::fmt::Debug for SchedulerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("SchedulerStats");
        d.field("searches", &self.searches)
            .field("plan_cache_hits", &self.plan_cache_hits)
            .field("plan_cache_misses", &self.plan_cache_misses)
            .field("plan_cache_evictions", &self.plan_cache_evictions)
            .field("plan_cache_invalidations", &self.plan_cache_invalidations);
        if self.policy != PolicyStats::default() {
            d.field("queues_shed", &self.policy.queues_shed)
                .field("jobs_shed", &self.policy.jobs_shed)
                .field("queues_deferred", &self.policy.queues_deferred);
        }
        if self.shards.rounds != 0 {
            d.field("shard_rounds", &self.shards.rounds)
                .field("shard_commits", &self.shards.commits)
                .field("shard_conflicts", &self.shards.conflicts)
                .field("shard_retries", &self.shards.retries);
        }
        if self.pinned != crate::pinning::PinnedStats::default() {
            d.field("pinned_hits", &self.pinned.hits)
                .field("pinned_misses", &self.pinned.misses)
                .field("repins", &self.pinned.repins);
        }
        d.finish()
    }
}

/// Feature matrix entries (paper Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Capabilities {
    /// Schedules fractions of GPUs (vGPUs).
    pub gpu_sharing: bool,
    /// Considers inter-function relations along the workflow.
    pub inter_function_relation: bool,
    /// Adapts decisions to runtime state between stages.
    pub adaptive: bool,
    /// Places tasks for data locality.
    pub data_locality: bool,
    /// Pre-warms containers.
    pub pre_warming: bool,
}

/// A pluggable scheduling algorithm.
pub trait Scheduler {
    /// Display name (figure legends).
    fn name(&self) -> &'static str;

    /// Table-1 feature row.
    fn capabilities(&self) -> Capabilities;

    /// Chooses ranked configuration candidates for one queue.
    fn schedule(&mut self, ctx: &SchedCtx<'_>) -> Outcome;

    /// Chooses a node for `config`, or `None` when nothing fits. Called
    /// for each candidate in rank order, and again on recheck rounds.
    fn place(&mut self, ctx: &SchedCtx<'_>, config: Config) -> Option<NodeId>;

    /// The round-policy stack driving the provided
    /// [`schedule_round`](Self::schedule_round), when the scheduler
    /// carries one. `None` (the default) behaves exactly like the
    /// classic (empty) stack: admit everything, classic scan order.
    fn round_policy(&mut self) -> Option<&mut PolicyStack> {
        None
    }

    /// Installs the round policy selected through
    /// [`SimBuilder::policy`](crate::SimBuilder::policy). Returns
    /// `false` when the scheduler cannot honour `spec`
    /// ([`Sim::try_run`](crate::Sim::try_run) surfaces that as
    /// [`SimError::InvalidKnob`](crate::SimError::InvalidKnob)). The
    /// default accepts only the classic contract.
    fn adopt_policy(&mut self, spec: &PolicySpec) -> bool {
        matches!(spec, PolicySpec::Classic)
    }

    /// Decides one controller round over *all* eligible queues.
    ///
    /// Returns decisions in the order the platform should apply them
    /// (placement + dispatch per decision, against the live
    /// [`ClusterState`]). Decisions for queues not presented in `ctx`
    /// are ignored; at most one decision per queue per round is applied.
    ///
    /// This is a provided method that drives the scheduler's
    /// [`round_policy`](Self::round_policy) stack through the typed
    /// pipeline of `crate::policy`: **admit** classifies every queue
    /// (defer/shed verdicts translate directly to [`Outcome::defer`]/
    /// [`Outcome::shed`] decisions), **rank** orders the admitted set,
    /// and the *first* ranked queue is decided via
    /// [`schedule`](Self::schedule) — the platform re-invokes the round
    /// with the remaining queues, so every dispatch still observes the
    /// cluster state left by the previous one while the policy re-ranks
    /// against fresh state each time.
    ///
    /// With no stack (or the empty classic stack) this takes a fast
    /// path that replays the classic one-queue-at-a-time contract: it
    /// decides only the first eligible queue and returns — bit-identical
    /// to the pre-policy platform, as pinned by
    /// `tests/control_plane_equivalence.rs`. Schedulers may still
    /// override the whole round, but composing reusable
    /// [`RoundPolicy`] stages is the supported seam.
    fn schedule_round(&mut self, ctx: &RoundCtx<'_>) -> Vec<(QueueKey, Outcome)> {
        if self.round_policy().is_none_or(|p| p.is_classic()) {
            return match ctx.queues.first() {
                Some(q) => vec![(q.key, self.schedule(&ctx.sched_ctx(0)))],
                None => Vec::new(),
            };
        }
        if ctx.queues.is_empty() {
            return Vec::new();
        }
        // Stage 1: admission. Each call below is a short-lived borrow of
        // the stack, so the dispatch stage can still take `&mut self`.
        let plan = self
            .round_policy()
            .map(|p| p.admit(ctx))
            .unwrap_or_else(|| AdmissionPlan::admit_all(ctx.queues.len()));
        let mut decisions: Vec<(QueueKey, Outcome)> = Vec::new();
        let mut admitted: Vec<usize> = Vec::new();
        for (i, d) in plan.decisions().iter().enumerate() {
            if i >= ctx.queues.len() {
                break; // malformed plan: ignore the excess
            }
            match *d {
                AdmissionDecision::Admit => admitted.push(i),
                AdmissionDecision::Defer { until_ms } => {
                    decisions.push((ctx.queues[i].key, Outcome::defer(until_ms)));
                }
                AdmissionDecision::Shed { reason } => {
                    decisions.push((ctx.queues[i].key, Outcome::shed(reason)));
                }
            }
        }
        // A plan shorter than the round admits the uncovered tail.
        admitted.extend(plan.len()..ctx.queues.len());
        // Stage 2: cross-queue ranking; stage 3: the classic per-queue
        // dispatch on the most urgent admitted queue.
        if !admitted.is_empty() {
            let ranked = self
                .round_policy()
                .map(|p| p.rank(ctx, &admitted))
                .unwrap_or_else(|| RankedQueues::scan_order(&admitted));
            if let Some(&i) = ranked.order().iter().find(|i| admitted.contains(i)) {
                decisions.push((ctx.queues[i].key, self.schedule(&ctx.sched_ctx(i))));
            }
        }
        if let Some(p) = self.round_policy() {
            p.observe(ctx, &decisions);
        }
        decisions
    }

    /// Control-plane notification hook; see [`SchedulerEvent`]. The
    /// default ignores every event.
    fn on_event(&mut self, event: &SchedulerEvent<'_>) {
        let _ = event;
    }

    /// End-of-run counters, copied into `ExperimentResult::scheduler_stats`
    /// by the platform. The default reports nothing.
    fn stats(&self) -> SchedulerStats {
        SchedulerStats::default()
    }
}

/// Converts search effort (expanded configurations) into simulated
/// controller time.
///
/// Calibration: §5.3 reports a brute-force search of 256³ ≈ 16.8 M paths at
/// 7258 ms → ≈ 0.4326 µs per expansion; a fixed base covers queue handling
/// and dispatch messaging.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OverheadModel {
    /// Fixed cost per decision, µs.
    pub base_us: f64,
    /// Cost per expanded configuration, µs.
    pub us_per_expansion: f64,
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel {
            base_us: 200.0,
            us_per_expansion: 7_258_000.0 / (256.0f64 * 256.0 * 256.0),
        }
    }
}

impl OverheadModel {
    /// A zero-overhead model (for the "w/o searching overhead" variants).
    pub fn free() -> Self {
        OverheadModel {
            base_us: 0.0,
            us_per_expansion: 0.0,
        }
    }

    /// Simulated decision time.
    pub fn decision_time(&self, expansions: u64) -> SimTime {
        SimTime::from_us((self.base_us + self.us_per_expansion * expansions as f64).round() as u64)
    }
}

/// OpenWhisk's home-invoker hash (§2): a deterministic hash of the
/// function's identity (namespace ≈ app, action ≈ stage) onto a node.
pub fn home_node(key: QueueKey, num_nodes: usize) -> NodeId {
    // FNV-1a over the key bytes; any stable hash works.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in key
        .app
        .0
        .to_le_bytes()
        .into_iter()
        .chain((key.stage as u64).to_le_bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    NodeId((h % num_nodes as u64) as u32)
}

/// Shared placement policy: locality first (§3.4). Tries, in order, the
/// preferred (predecessor) node, the home invoker, any warm invoker with
/// capacity, and finally the cold invoker with the most free resources.
pub fn place_locality_first(
    ctx: &SchedCtx<'_>,
    demand: Resources,
    preferred: Option<NodeId>,
) -> Option<NodeId> {
    let home = home_node(ctx.key, ctx.cluster.len());
    if let Some(p) = preferred {
        if ctx.cluster.node(p).fits(demand) {
            return Some(p);
        }
    }
    if ctx.cluster.node(home).fits(demand) {
        return Some(home);
    }
    // Warm invokers with capacity (deterministic id order).
    for n in ctx.cluster.nodes() {
        if n.has_warm(ctx.function) && n.fits(demand) {
            return Some(n.id);
        }
    }
    ctx.cluster.most_free(demand)
}

/// Shared placement policy: minimise leftover fragmentation (INFless-style
/// best fit over weighted resources).
pub fn place_min_fragmentation(
    cluster: &ClusterState,
    demand: Resources,
    cpu_weight: f64,
    gpu_weight: f64,
) -> Option<NodeId> {
    cluster
        .feasible(demand)
        .min_by(|a, b| {
            let left_a = (a.free - demand).weighted(cpu_weight, gpu_weight);
            let left_b = (b.free - demand).weighted(cpu_weight, gpu_weight);
            left_a.total_cmp(&left_b).then(a.id.0.cmp(&b.id.0))
        })
        .map(|n| n.id)
}

/// Converts queued [`Job`]s into scheduler-facing views, rebuilding into
/// `out` (retained capacity — the platform's per-queue buffers make this
/// allocation-free in steady state).
pub fn fill_job_views<'j>(
    out: &mut Vec<JobView>,
    jobs: impl Iterator<Item = &'j Job>,
    now: SimTime,
    arrivals: impl Fn(&Job) -> (SimTime, SimTime),
) {
    out.clear();
    out.extend(jobs.map(|j| {
        let (arrived, deadline) = arrivals(j);
        JobView {
            invocation: j.invocation,
            ready_at_ms: j.ready_at.as_ms(),
            invocation_arrival_ms: arrived.as_ms(),
            slack_ms: deadline.as_ms() - now.as_ms(),
            pred_node: j.pred_node,
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::NodeView;

    #[test]
    fn overhead_model_calibration() {
        let m = OverheadModel::default();
        // Brute force over a 3-stage group with 256 configs each.
        let t = m.decision_time(256 * 256 * 256);
        assert!(
            (t.as_ms() - 7258.0).abs() < 1.0,
            "brute force should cost ~7258 ms, got {}",
            t.as_ms()
        );
        // A pruned search of ~10k expansions costs a few ms.
        let t = m.decision_time(10_000);
        assert!(t.as_ms() > 3.0 && t.as_ms() < 6.0, "{}", t.as_ms());
    }

    #[test]
    fn free_overhead_is_zero() {
        assert_eq!(
            OverheadModel::free().decision_time(1_000_000),
            SimTime::ZERO
        );
    }

    #[test]
    fn home_node_is_stable_and_spread() {
        let a = home_node(
            QueueKey {
                app: AppId(0),
                stage: 0,
            },
            16,
        );
        let b = home_node(
            QueueKey {
                app: AppId(0),
                stage: 0,
            },
            16,
        );
        assert_eq!(a, b);
        // Different stages of different apps spread across nodes.
        let mut distinct = std::collections::HashSet::new();
        for app in 0..4u32 {
            for stage in 0..5usize {
                distinct.insert(home_node(
                    QueueKey {
                        app: AppId(app),
                        stage,
                    },
                    16,
                ));
            }
        }
        assert!(
            distinct.len() >= 8,
            "only {} distinct homes",
            distinct.len()
        );
    }

    #[test]
    fn min_fragmentation_picks_tightest_fit() {
        let n0 = NodeView::idle(NodeId(0), Resources::new(16, 7));
        let mut n1 = NodeView::idle(NodeId(1), Resources::new(16, 7));
        n1.free = Resources::new(4, 2);
        let state = ClusterState::from_views(vec![n0, n1]);
        // Best fit leaves the least behind -> node 1.
        assert_eq!(
            place_min_fragmentation(&state, Resources::new(4, 2), 1.0, 2.0),
            Some(NodeId(1))
        );
        // Offline nodes are skipped.
        let mut off = NodeView::idle(NodeId(0), Resources::new(16, 7));
        off.online = false;
        off.free = Resources::ZERO;
        let n1 = NodeView::idle(NodeId(1), Resources::new(4, 2));
        let state = ClusterState::from_views(vec![off, n1]);
        assert_eq!(
            place_min_fragmentation(&state, Resources::new(1, 1), 1.0, 2.0),
            Some(NodeId(1))
        );
    }

    #[test]
    fn outcome_constructors() {
        let s = Outcome::skip();
        assert!(s.candidates.is_empty());
        let o = Outcome::single(Config::new(2, 1, 1), 5);
        assert_eq!(o.candidates.len(), 1);
        assert_eq!(o.planned_batch, Some(2));
        assert_eq!(o.expansions, 5);
    }

    #[test]
    fn fill_job_views_reuses_capacity() {
        let jobs: Vec<Job> = (0..4u64)
            .map(|i| Job {
                invocation: InvocationId(i),
                slot: i as u32,
                stage: 0,
                ready_at: SimTime::from_ms(i as f64),
                pred_node: None,
            })
            .collect();
        let mut out = Vec::new();
        let arrivals = |_: &Job| (SimTime::ZERO, SimTime::from_ms(100.0));
        fill_job_views(&mut out, jobs.iter(), SimTime::from_ms(10.0), arrivals);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].slack_ms, 90.0);
        let ptr = out.as_ptr();
        fill_job_views(
            &mut out,
            jobs.iter().take(2),
            SimTime::from_ms(20.0),
            arrivals,
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out.as_ptr(), ptr, "refill must reuse the buffer");
    }
}
