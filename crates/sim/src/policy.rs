//! The composable round-policy pipeline: admission → cross-queue ranking
//! → per-queue dispatch, as typed, stackable stages.
//!
//! A controller round used to be decidable only by overriding the whole
//! of [`Scheduler::schedule_round`](crate::Scheduler::schedule_round),
//! which forced every cross-queue idea (SLO-aware admission, cross-queue
//! packing) into a monolithic scheduler fork. This module splits the
//! round into the three decisions HAS-GPU/INFless-style systems treat as
//! separable:
//!
//! 1. **Admission** — [`RoundPolicy::admit`] classifies every eligible
//!    queue as [`Admit`](AdmissionDecision::Admit),
//!    [`Defer`](AdmissionDecision::Defer) (retry no earlier than a given
//!    instant), or [`Shed`](AdmissionDecision::Shed) (drop the queue's
//!    jobs, killing their invocations — surfaced through
//!    [`SchedulerEvent::QueueShed`](crate::SchedulerEvent::QueueShed));
//! 2. **Ranking** — [`RoundPolicy::rank`] orders the admitted queues
//!    across the whole round (which queue deserves the next search);
//! 3. **Dispatch** — the scheduler's existing per-queue
//!    [`schedule`](crate::Scheduler::schedule)/
//!    [`place`](crate::Scheduler::place) pair, unchanged.
//!
//! Stages compose through a [`PolicyStack`]: admission verdicts merge by
//! severity (a later stage can only tighten an earlier one), rank stages
//! successively reorder the admitted set, and
//! [`RoundPolicy::observe`] feeds every stage the round's decisions so
//! budget-sharing policies can meter themselves. The provided
//! [`Scheduler::schedule_round`](crate::Scheduler::schedule_round)
//! drives whatever stack the scheduler exposes through
//! [`round_policy`](crate::Scheduler::round_policy); the empty
//! ("classic") stack takes a fast path that is instruction-for-
//! instruction the pre-policy driver, so every existing scheduler stays
//! bit-identical (pinned by `tests/golden/control_plane.digest` and the
//! stack-equivalence property test).
//!
//! The first sim-layer stage, [`SloAdmission`], sheds or defers queues
//! whose deadline is provably lost; ESG's cross-queue packing stage
//! lives in `esg-core` (it needs the search machinery) and is selected
//! declaratively through [`PolicySpec`].

use crate::sched::{Outcome, QueueKey, RoundCtx};
use esg_model::Config;
use std::fmt;

/// Why an admission stage dropped a queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// Even the fastest configuration on the fastest node class cannot
    /// finish within the queue's remaining slack: the deadline is lost
    /// and serving the jobs would only steal capacity from invocations
    /// that can still win.
    GsloUnattainable,
    /// The policy judged the cluster too overloaded to serve the queue.
    Overload,
}

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShedReason::GsloUnattainable => write!(f, "gslo-unattainable"),
            ShedReason::Overload => write!(f, "overload"),
        }
    }
}

/// One queue's admission verdict.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AdmissionDecision {
    /// Hand the queue to the ranking stage.
    Admit,
    /// Skip the queue this round; do not re-decide before `until_ms`.
    Defer {
        /// Earliest re-decision instant, ms.
        until_ms: f64,
    },
    /// Drop the queue's jobs (their invocations are killed; sibling
    /// jobs in other queues are purged by the platform).
    Shed {
        /// Why the queue was dropped.
        reason: ShedReason,
    },
}

impl AdmissionDecision {
    /// Merge severity: Shed > Defer > Admit.
    fn severity(&self) -> u8 {
        match self {
            AdmissionDecision::Admit => 0,
            AdmissionDecision::Defer { .. } => 1,
            AdmissionDecision::Shed { .. } => 2,
        }
    }
}

/// An admission stage's verdict over every queue of a round, parallel to
/// [`RoundCtx::queues`].
#[derive(Clone, Debug, PartialEq)]
pub struct AdmissionPlan {
    decisions: Vec<AdmissionDecision>,
}

impl AdmissionPlan {
    /// Admits all `n` queues.
    pub fn admit_all(n: usize) -> AdmissionPlan {
        AdmissionPlan {
            decisions: vec![AdmissionDecision::Admit; n],
        }
    }

    /// Defers all `n` queues until `until_ms`.
    pub fn defer_all(n: usize, until_ms: f64) -> AdmissionPlan {
        AdmissionPlan {
            decisions: vec![AdmissionDecision::Defer { until_ms }; n],
        }
    }

    /// The per-queue decisions, indexed like `RoundCtx::queues`.
    pub fn decisions(&self) -> &[AdmissionDecision] {
        &self.decisions
    }

    /// Overrides queue `i`'s decision.
    pub fn set(&mut self, i: usize, decision: AdmissionDecision) {
        self.decisions[i] = decision;
    }

    /// Number of queues covered.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// True when the plan covers no queues.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// Indices still admitted.
    pub fn admitted(&self) -> Vec<usize> {
        self.decisions
            .iter()
            .enumerate()
            .filter(|(_, d)| matches!(d, AdmissionDecision::Admit))
            .map(|(i, _)| i)
            .collect()
    }

    /// Merges `other` in, most severe verdict per queue winning
    /// (stacked admission stages can only tighten each other; two defers
    /// keep the later retry instant).
    pub fn tighten(&mut self, other: &AdmissionPlan) {
        debug_assert_eq!(self.len(), other.len(), "plans cover the same round");
        for (mine, theirs) in self.decisions.iter_mut().zip(&other.decisions) {
            match (&mut *mine, theirs) {
                (
                    AdmissionDecision::Defer { until_ms: a },
                    AdmissionDecision::Defer { until_ms: b },
                ) => *a = a.max(*b),
                (m, t) if t.severity() > m.severity() => *mine = *t,
                _ => {}
            }
        }
    }
}

/// The cross-queue dispatch order over a round's admitted queues
/// (indices into [`RoundCtx::queues`], most urgent first).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RankedQueues {
    order: Vec<usize>,
}

impl RankedQueues {
    /// The classic order: admitted queues exactly as the controller
    /// scanned them.
    pub fn scan_order(admitted: &[usize]) -> RankedQueues {
        RankedQueues {
            order: admitted.to_vec(),
        }
    }

    /// An explicit order (most urgent first).
    pub fn from_order(order: Vec<usize>) -> RankedQueues {
        RankedQueues { order }
    }

    /// The dispatch order.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Consumes the ranking.
    pub fn into_order(self) -> Vec<usize> {
        self.order
    }
}

/// Counters a policy stage reports; the owning scheduler merges them
/// into its [`SchedulerStats`](crate::SchedulerStats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PolicyStats {
    /// Queues dropped by admission shedding.
    pub queues_shed: u64,
    /// Jobs dropped by admission shedding.
    pub jobs_shed: u64,
    /// Queue-rounds deferred. In a [`PolicyStack`]'s merged stats this
    /// is the *final-decision* count tallied by the stack's `observe`
    /// (a stage voting Defer cannot know whether another stage's Shed
    /// out-severities it, so stage-local defer guesses are not summed).
    pub queues_deferred: u64,
}

impl PolicyStats {
    /// Component-wise sum.
    pub fn merge(self, other: PolicyStats) -> PolicyStats {
        PolicyStats {
            queues_shed: self.queues_shed + other.queues_shed,
            jobs_shed: self.jobs_shed + other.jobs_shed,
            queues_deferred: self.queues_deferred + other.queues_deferred,
        }
    }
}

/// One stage of a round-policy pipeline.
///
/// Every method has a neutral default, so a stage implements only the
/// decision it owns: an admission stage overrides [`admit`](Self::admit),
/// a packing stage overrides [`rank`](Self::rank) (and usually
/// [`observe`](Self::observe) to meter a shared budget).
pub trait RoundPolicy {
    /// Stage name (diagnostics, `PolicyStack` Debug output).
    fn name(&self) -> &'static str;

    /// Classifies every eligible queue of the round. The default admits
    /// everything.
    fn admit(&mut self, ctx: &RoundCtx<'_>) -> AdmissionPlan {
        AdmissionPlan::admit_all(ctx.queues.len())
    }

    /// Orders the admitted queues for dispatch. The default replays the
    /// classic controller scan order.
    fn rank(&mut self, ctx: &RoundCtx<'_>, admitted: &[usize]) -> RankedQueues {
        let _ = ctx;
        RankedQueues::scan_order(admitted)
    }

    /// Feedback hook: the decisions the driver produced for this round
    /// invocation (budget-sharing stages meter `Outcome::expansions`
    /// here). The default ignores them.
    fn observe(&mut self, ctx: &RoundCtx<'_>, decisions: &[(QueueKey, Outcome)]) {
        let _ = (ctx, decisions);
    }

    /// End-of-run counters. The default reports nothing.
    fn stats(&self) -> PolicyStats {
        PolicyStats::default()
    }

    /// A boxed deep copy of this stage, including its current mutable
    /// state. Required (no neutral default exists for an arbitrary
    /// stage) so every stack is clonable: the sharded controller
    /// ([`SimConfig::shards`](crate::SimConfig::shards)) gives each
    /// shard its own clone of the scheduler's stack, making per-shard
    /// policy state shard-local by construction.
    fn clone_box(&self) -> Box<dyn RoundPolicy>;
}

/// An ordered stack of [`RoundPolicy`] stages, itself a `RoundPolicy`.
///
/// * **admit** — stages run in order; verdicts merge by severity
///   ([`AdmissionPlan::tighten`]), so a later stage can only tighten an
///   earlier one.
/// * **rank** — each stage reorders the order produced by the previous
///   one. A stage's output is sanitised against its input (duplicates
///   and foreign indices dropped, omitted queues re-appended in their
///   previous order), so no stage can starve a queue by accident.
/// * **observe**/**stats** — fan out to / merge over all stages.
///
/// The empty stack ([`PolicyStack::classic`]) is the classic
/// one-queue-at-a-time contract; the provided
/// [`Scheduler::schedule_round`](crate::Scheduler::schedule_round)
/// recognises it and takes a zero-overhead fast path.
#[derive(Default)]
pub struct PolicyStack {
    stages: Vec<Box<dyn RoundPolicy>>,
    /// Final deferred-queue decisions observed across the run (the
    /// authoritative `queues_deferred`; see [`PolicyStats`]).
    deferred: u64,
}

impl PolicyStack {
    /// An empty stack: admit everything, classic scan order. Drives the
    /// fast path in the provided `schedule_round`.
    pub fn classic() -> PolicyStack {
        PolicyStack::default()
    }

    /// An empty stack to push stages onto (alias of
    /// [`classic`](Self::classic), reads better when stages follow).
    pub fn new() -> PolicyStack {
        PolicyStack::default()
    }

    /// Appends a stage (builder form).
    pub fn with(mut self, stage: impl RoundPolicy + 'static) -> PolicyStack {
        self.stages.push(Box::new(stage));
        self
    }

    /// Appends a boxed stage.
    pub fn push(&mut self, stage: Box<dyn RoundPolicy>) {
        self.stages.push(stage);
    }

    /// True when the stack has no stages (the classic contract).
    pub fn is_classic(&self) -> bool {
        self.stages.is_empty()
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when the stack has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The stage names, bottom (first-run) first.
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// Merged counters of every stage (inherent mirror of
    /// [`RoundPolicy::stats`], usable without importing the trait),
    /// with `queues_deferred` replaced by the stack's own
    /// final-decision tally (see [`PolicyStats::queues_deferred`]).
    pub fn policy_stats(&self) -> PolicyStats {
        let mut stats = self
            .stages
            .iter()
            .fold(PolicyStats::default(), |acc, s| acc.merge(s.stats()));
        stats.queues_deferred = self.deferred;
        stats
    }
}

impl Clone for PolicyStack {
    fn clone(&self) -> PolicyStack {
        PolicyStack {
            stages: self.stages.iter().map(|s| s.clone_box()).collect(),
            deferred: self.deferred,
        }
    }
}

impl fmt::Debug for PolicyStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PolicyStack")
            .field("stages", &self.stage_names())
            .finish()
    }
}

/// Restricts a stage's proposed order to `prev`'s members (deduplicated,
/// stage order preserved) and re-appends anything the stage omitted, in
/// `prev` order.
fn sanitise_order(proposed: Vec<usize>, prev: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(prev.len());
    for i in proposed {
        if prev.contains(&i) && !out.contains(&i) {
            out.push(i);
        }
    }
    for &i in prev {
        if !out.contains(&i) {
            out.push(i);
        }
    }
    out
}

impl RoundPolicy for PolicyStack {
    fn name(&self) -> &'static str {
        "stack"
    }

    fn admit(&mut self, ctx: &RoundCtx<'_>) -> AdmissionPlan {
        let mut merged = AdmissionPlan::admit_all(ctx.queues.len());
        for stage in &mut self.stages {
            let plan = stage.admit(ctx);
            merged.tighten(&plan);
        }
        merged
    }

    fn rank(&mut self, ctx: &RoundCtx<'_>, admitted: &[usize]) -> RankedQueues {
        let mut order: Vec<usize> = admitted.to_vec();
        for stage in &mut self.stages {
            let proposed = stage.rank(ctx, &order).into_order();
            order = sanitise_order(proposed, &order);
        }
        RankedQueues::from_order(order)
    }

    fn observe(&mut self, ctx: &RoundCtx<'_>, decisions: &[(QueueKey, Outcome)]) {
        // Tally the round's FINAL deferrals here: only the merged plan
        // knows whether a stage's Defer vote survived severity merging.
        self.deferred += decisions
            .iter()
            .filter(|(_, o)| {
                o.shed.is_none() && o.candidates.is_empty() && o.defer_until_ms.is_some()
            })
            .count() as u64;
        for stage in &mut self.stages {
            stage.observe(ctx, decisions);
        }
    }

    fn stats(&self) -> PolicyStats {
        self.policy_stats()
    }

    fn clone_box(&self) -> Box<dyn RoundPolicy> {
        Box::new(self.clone())
    }
}

/// Knobs of the [`SloAdmission`] stage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloAdmissionConfig {
    /// Shed hopeless queues. `false` admits them for best-effort
    /// draining instead (a deployment that must never drop accepted
    /// work keeps only the saturation-deferral behaviour).
    pub shed: bool,
    /// Back-off for saturation-deferred queues, ms.
    pub defer_ms: f64,
}

impl Default for SloAdmissionConfig {
    fn default() -> Self {
        SloAdmissionConfig {
            shed: true,
            defer_ms: 5.0,
        }
    }
}

/// SLO-aware admission (INFless/HAS-GPU-style): sheds queues whose
/// deadline is provably lost and defers queues the cluster cannot host
/// right now.
///
/// The shed test is an *optimistic lower bound*: a queue is dropped only
/// when even the fastest profiled configuration, run on the fastest
/// online node class whose **total** capacity could host it, with zero
/// transfer/cold-start/queueing cost, still misses the remaining slack
/// of the queue's *most slack-rich* job ([`gslo_attainable`] is
/// monotone in slack, so that proves every queued invocation hopeless).
/// Anything the oracle could conceivably finish in time is admitted —
/// pinned by the oracle property test in
/// `tests/policy_stack_equivalence.rs`, which audits every job of every
/// shed queue.
///
/// The defer test uses *free* capacity: when no online node currently
/// fits even the minimum configuration, deciding the queue would only
/// burn a search and park it on the recheck list, so it is deferred for
/// [`SloAdmissionConfig::defer_ms`] instead.
#[derive(Clone, Debug, Default)]
pub struct SloAdmission {
    cfg: SloAdmissionConfig,
    stats: PolicyStats,
}

impl SloAdmission {
    /// An admission stage with explicit knobs.
    pub fn new(cfg: SloAdmissionConfig) -> SloAdmission {
        SloAdmission {
            cfg,
            stats: PolicyStats::default(),
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> SloAdmissionConfig {
        self.cfg
    }
}

/// Whether *any* (online node class, profiled configuration) pair could
/// finish one task of `function` within `slack_ms`: the optimistic
/// lower bound [`SloAdmission`] sheds against. Fit is judged against
/// node **total** capacity (capacity in use frees up; a drained node
/// does not come back), and the bound ignores transfers, cold starts,
/// noise, and queueing — all of which only add time.
pub fn gslo_attainable(ctx: &RoundCtx<'_>, function: esg_model::FnId, slack_ms: f64) -> bool {
    if slack_ms <= 0.0 {
        return false;
    }
    let entries = ctx.profiles.profile(function).entries();
    ctx.cluster.nodes().iter().filter(|n| n.online).any(|n| {
        entries
            .iter()
            .any(|e| n.total.contains(e.config.resources()) && e.latency_ms * n.speed <= slack_ms)
    })
}

impl RoundPolicy for SloAdmission {
    fn name(&self) -> &'static str {
        "slo-admission"
    }

    fn admit(&mut self, ctx: &RoundCtx<'_>) -> AdmissionPlan {
        let mut plan = AdmissionPlan::admit_all(ctx.queues.len());
        let saturated = ctx
            .cluster
            .feasible(Config::MIN.resources())
            .next()
            .is_none();
        for (i, q) in ctx.queues.iter().enumerate() {
            if q.jobs.is_empty() {
                continue;
            }
            // Shedding drops the WHOLE queue, so it must be judged on
            // the most slack-rich job: attainability is monotone in
            // slack, so if even that job is hopeless, every job is —
            // a queue mixing one dead job with feasible younger ones is
            // admitted (the dead job drains best-effort and the young
            // ones keep their chance).
            let slack = q
                .jobs
                .iter()
                .map(|j| j.slack_ms)
                .fold(f64::NEG_INFINITY, f64::max);
            // When `shed` is off, hopeless queues are admitted for
            // best-effort draining (the dispatch stage's hopeless path
            // drains cost-efficiently); deferring them would only
            // postpone the loss forever.
            if self.cfg.shed && !gslo_attainable(ctx, q.function, slack) {
                self.stats.queues_shed += 1;
                self.stats.jobs_shed += q.jobs.len() as u64;
                plan.set(
                    i,
                    AdmissionDecision::Shed {
                        reason: ShedReason::GsloUnattainable,
                    },
                );
                continue;
            }
            if saturated {
                plan.set(
                    i,
                    AdmissionDecision::Defer {
                        until_ms: ctx.now_ms + self.cfg.defer_ms,
                    },
                );
            }
        }
        plan
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }

    fn clone_box(&self) -> Box<dyn RoundPolicy> {
        Box::new(self.clone())
    }
}

/// Knobs of the ESG cross-queue packing stage (`esg-core`'s
/// `EsgCrossQueuePacking`; defined here so [`PolicySpec`] can carry it
/// through the sim layer).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PackingConfig {
    /// Shared search budget per controller instant, in expanded
    /// configurations: once a round's decisions have spent it, the
    /// remaining queues are deferred instead of searched.
    pub round_budget: u64,
    /// Back-off for budget-deferred queues, ms.
    pub defer_ms: f64,
    /// Rank bonus (in normalised-tightness units) for queues whose
    /// predecessor node holds a warm container for the queue's function
    /// — dispatching them first co-locates sibling stages while the
    /// warm slot is still free.
    pub warm_bias: f64,
}

impl Default for PackingConfig {
    fn default() -> Self {
        PackingConfig {
            round_budget: 200_000,
            defer_ms: 5.0,
            warm_bias: 0.25,
        }
    }
}

/// Knobs of the bandwidth-aware packing stage (`esg-core`'s
/// `BandwidthAwarePacking`; defined here so [`PolicySpec`] can carry it
/// through the sim layer). Extends [`PackingConfig`] with an
/// estimated-contention term fed by the live data-plane view
/// (`RoundCtx::dataplane`); without a data plane the stage degrades to
/// plain cross-queue packing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BandwidthPackingConfig {
    /// The underlying packing knobs (budget, defer, warm bias).
    pub packing: PackingConfig,
    /// Rank penalty (normalised-tightness units) per flow already
    /// contending for the predecessor node's ingress path — warm
    /// affinity onto a saturated link stops looking free.
    pub contention_bias: f64,
    /// Defer a queue (by the packing `defer_ms`) when its predecessor
    /// node has at least this many transfers queued for staging: the
    /// input tensors cannot even start moving, so burning search budget
    /// now buys nothing.
    pub defer_queue_depth: u32,
}

impl Default for BandwidthPackingConfig {
    fn default() -> Self {
        BandwidthPackingConfig {
            packing: PackingConfig::default(),
            contention_bias: 0.1,
            defer_queue_depth: 4,
        }
    }
}

/// Declarative round-policy selection for the
/// [`SimBuilder`](crate::SimBuilder) `policy(...)` knob.
///
/// The sim layer cannot construct upper-layer stages (ESG packing needs
/// `esg-core`'s search machinery), so a spec is interpreted by the
/// scheduler itself through
/// [`Scheduler::adopt_policy`](crate::Scheduler::adopt_policy): the
/// sim-layer stages are built by [`sim_stack`](Self::sim_stack), and a
/// scheduler that cannot honour a spec rejects it (surfaced by
/// [`Sim::try_run`](crate::Sim::try_run) as
/// [`SimError::InvalidKnob`](crate::SimError::InvalidKnob)).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum PolicySpec {
    /// The classic one-queue-at-a-time contract (every scheduler).
    #[default]
    Classic,
    /// [`SloAdmission`] alone (any scheduler that carries a stack).
    SloAdmission(SloAdmissionConfig),
    /// ESG cross-queue packing alone (`EsgScheduler` only).
    CrossQueuePacking(PackingConfig),
    /// [`SloAdmission`] below ESG cross-queue packing (`EsgScheduler`
    /// only).
    PackingWithAdmission(SloAdmissionConfig, PackingConfig),
    /// Bandwidth-aware cross-queue packing (`EsgScheduler` only):
    /// packing plus a contention penalty fed by the live data-plane
    /// view.
    BandwidthPacking(BandwidthPackingConfig),
}

impl PolicySpec {
    /// [`SloAdmission`] at its default knobs.
    pub fn slo_admission() -> PolicySpec {
        PolicySpec::SloAdmission(SloAdmissionConfig::default())
    }

    /// ESG cross-queue packing at its default knobs.
    pub fn packing() -> PolicySpec {
        PolicySpec::CrossQueuePacking(PackingConfig::default())
    }

    /// Admission + packing at default knobs.
    pub fn packing_with_admission() -> PolicySpec {
        PolicySpec::PackingWithAdmission(SloAdmissionConfig::default(), PackingConfig::default())
    }

    /// Bandwidth-aware packing at its default knobs.
    pub fn bandwidth_packing() -> PolicySpec {
        PolicySpec::BandwidthPacking(BandwidthPackingConfig::default())
    }

    /// Builds the stack for specs expressible with sim-layer stages
    /// alone; `None` for specs needing upper-layer machinery (baselines
    /// use this as their whole `adopt_policy`).
    pub fn sim_stack(&self) -> Option<PolicyStack> {
        match *self {
            PolicySpec::Classic => Some(PolicyStack::classic()),
            PolicySpec::SloAdmission(cfg) => Some(PolicyStack::new().with(SloAdmission::new(cfg))),
            PolicySpec::CrossQueuePacking(_)
            | PolicySpec::PackingWithAdmission(..)
            | PolicySpec::BandwidthPacking(_) => None,
        }
    }

    /// A short display label ("classic", "admit", "pack", "pack+admit",
    /// "bw-pack").
    pub fn label(&self) -> &'static str {
        match self {
            PolicySpec::Classic => "classic",
            PolicySpec::SloAdmission(_) => "admit",
            PolicySpec::CrossQueuePacking(_) => "pack",
            PolicySpec::PackingWithAdmission(..) => "pack+admit",
            PolicySpec::BandwidthPacking(_) => "bw-pack",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{JobView, QueueView};
    use crate::state::{ClusterState, NodeView};
    use crate::SimEnv;
    use esg_model::{AppId, InvocationId, NodeId, Resources, SloClass};

    fn job(slack: f64) -> JobView {
        JobView {
            invocation: InvocationId(0),
            ready_at_ms: 0.0,
            invocation_arrival_ms: 0.0,
            slack_ms: slack,
            pred_node: None,
        }
    }

    fn round_ctx<'a>(
        env: &'a SimEnv,
        cluster: &'a ClusterState,
        queues: &'a [QueueView<'a>],
    ) -> RoundCtx<'a> {
        RoundCtx {
            now_ms: 100.0,
            queues,
            cluster,
            profiles: &env.profiles,
            apps: &env.apps,
            catalog: &env.catalog,
            price: &env.price,
            transfer: &env.transfer,
            noise: &env.noise,
            dataplane: None,
            servers: None,
        }
    }

    fn queue_view<'a>(
        env: &'a SimEnv,
        jobs: &'a [JobView],
        app: u32,
        stage: usize,
    ) -> QueueView<'a> {
        QueueView {
            key: QueueKey {
                app: AppId(app),
                stage,
            },
            jobs,
            function: env.apps[app as usize].nodes[stage],
            slo_ms: env.slo_ms(AppId(app)),
            base_latency_ms: env.base_latency_ms(AppId(app)),
            queue_interval_ms: None,
        }
    }

    fn idle_cluster(n: usize) -> ClusterState {
        ClusterState::from_views(
            (0..n as u32)
                .map(|i| NodeView::idle(NodeId(i), Resources::new(16, 7)))
                .collect(),
        )
    }

    #[test]
    fn admission_plans_tighten_by_severity() {
        let mut a = AdmissionPlan::admit_all(3);
        let mut b = AdmissionPlan::admit_all(3);
        b.set(0, AdmissionDecision::Defer { until_ms: 10.0 });
        b.set(
            1,
            AdmissionDecision::Shed {
                reason: ShedReason::Overload,
            },
        );
        a.tighten(&b);
        assert_eq!(
            a.decisions()[0],
            AdmissionDecision::Defer { until_ms: 10.0 }
        );
        assert!(matches!(a.decisions()[1], AdmissionDecision::Shed { .. }));
        assert_eq!(a.decisions()[2], AdmissionDecision::Admit);
        assert_eq!(a.admitted(), vec![2]);
        // Defer + Defer keeps the later instant; Shed survives anything.
        let mut c = AdmissionPlan::defer_all(3, 20.0);
        c.tighten(&AdmissionPlan::defer_all(3, 5.0));
        assert_eq!(
            c.decisions()[0],
            AdmissionDecision::Defer { until_ms: 20.0 }
        );
        let mut d = AdmissionPlan::admit_all(1);
        d.set(
            0,
            AdmissionDecision::Shed {
                reason: ShedReason::GsloUnattainable,
            },
        );
        d.tighten(&AdmissionPlan::defer_all(1, 99.0));
        assert!(matches!(d.decisions()[0], AdmissionDecision::Shed { .. }));
    }

    #[test]
    fn sanitise_order_preserves_membership() {
        // Foreign indices and duplicates are dropped; omissions come back
        // in previous order.
        assert_eq!(sanitise_order(vec![2, 9, 2, 0], &[0, 1, 2]), vec![2, 0, 1]);
        assert_eq!(sanitise_order(vec![], &[3, 4]), vec![3, 4]);
    }

    /// A rank stage reversing the current order, for stack tests.
    struct Reverse;
    impl RoundPolicy for Reverse {
        fn name(&self) -> &'static str {
            "reverse"
        }
        fn rank(&mut self, _ctx: &RoundCtx<'_>, admitted: &[usize]) -> RankedQueues {
            let mut o = admitted.to_vec();
            o.reverse();
            RankedQueues::from_order(o)
        }
        fn clone_box(&self) -> Box<dyn RoundPolicy> {
            Box::new(Reverse)
        }
    }

    #[test]
    fn stack_composes_rank_stages_in_order() {
        let env = SimEnv::standard(SloClass::Moderate);
        let cluster = idle_cluster(2);
        let j0 = [job(500.0)];
        let j1 = [job(400.0)];
        let j2 = [job(300.0)];
        let queues = [
            queue_view(&env, &j0, 0, 0),
            queue_view(&env, &j1, 1, 0),
            queue_view(&env, &j2, 2, 0),
        ];
        let ctx = round_ctx(&env, &cluster, &queues);
        let mut stack = PolicyStack::new().with(Reverse).with(Reverse);
        assert!(!stack.is_classic());
        assert_eq!(stack.stage_names(), vec!["reverse", "reverse"]);
        // Two reversals cancel out.
        assert_eq!(stack.rank(&ctx, &[0, 1, 2]).order(), &[0, 1, 2]);
        let mut single = PolicyStack::new().with(Reverse);
        assert_eq!(single.rank(&ctx, &[0, 1, 2]).order(), &[2, 1, 0]);
        // The empty stack is classic and ranks in scan order.
        let mut classic = PolicyStack::classic();
        assert!(classic.is_classic());
        assert_eq!(classic.rank(&ctx, &[1, 2]).order(), &[1, 2]);
        assert_eq!(
            classic.admit(&ctx).decisions(),
            AdmissionPlan::admit_all(3).decisions()
        );
    }

    #[test]
    fn slo_admission_sheds_hopeless_and_admits_feasible() {
        let env = SimEnv::standard(SloClass::Moderate);
        let cluster = idle_cluster(4);
        let dead = [job(-5.0)];
        let fine = [job(10_000.0)];
        let mixed = [job(-5.0), job(10_000.0)];
        let queues = [
            queue_view(&env, &dead, 0, 0),
            queue_view(&env, &fine, 1, 0),
            // A queue mixing a dead job with a feasible one must NOT be
            // shed: shedding drops every queued invocation.
            queue_view(&env, &mixed, 2, 0),
        ];
        let ctx = round_ctx(&env, &cluster, &queues);
        let mut adm = SloAdmission::new(SloAdmissionConfig::default());
        let plan = adm.admit(&ctx);
        assert!(matches!(
            plan.decisions()[0],
            AdmissionDecision::Shed {
                reason: ShedReason::GsloUnattainable
            }
        ));
        assert_eq!(plan.decisions()[1], AdmissionDecision::Admit);
        assert_eq!(plan.decisions()[2], AdmissionDecision::Admit);
        assert_eq!(adm.stats().queues_shed, 1);
        assert_eq!(adm.stats().jobs_shed, 1);
        // shed = false admits hopeless queues for best-effort draining.
        let mut soft = SloAdmission::new(SloAdmissionConfig {
            shed: false,
            ..SloAdmissionConfig::default()
        });
        let plan = soft.admit(&ctx);
        assert_eq!(plan.decisions()[0], AdmissionDecision::Admit);
        assert_eq!(soft.stats().queues_shed, 0);
    }

    #[test]
    fn slo_admission_defers_when_saturated() {
        let env = SimEnv::standard(SloClass::Moderate);
        let mut cluster = idle_cluster(2);
        for i in 0..2u32 {
            cluster.node_mut(NodeId(i)).free = Resources::ZERO;
        }
        let fine = [job(10_000.0)];
        let queues = [queue_view(&env, &fine, 0, 0)];
        let ctx = round_ctx(&env, &cluster, &queues);
        let mut adm = SloAdmission::new(SloAdmissionConfig::default());
        let plan = adm.admit(&ctx);
        assert_eq!(
            plan.decisions()[0],
            AdmissionDecision::Defer { until_ms: 105.0 }
        );
    }

    #[test]
    fn gslo_attainability_tracks_speed_and_capacity() {
        let env = SimEnv::standard(SloClass::Moderate);
        let queues: [QueueView<'_>; 0] = [];
        // Fast idle cluster: generous slack is attainable, negative is not.
        let cluster = idle_cluster(2);
        let ctx = round_ctx(&env, &cluster, &queues);
        let f = env.apps[0].nodes[0];
        assert!(gslo_attainable(&ctx, f, 1e9));
        assert!(!gslo_attainable(&ctx, f, -1.0));
        assert!(!gslo_attainable(&ctx, f, 0.0));
        // A cluster of absurdly slow nodes cannot attain a tight slack
        // that a baseline-speed cluster could.
        let fastest = env
            .profiles
            .profile(f)
            .entries()
            .iter()
            .map(|e| e.latency_ms)
            .fold(f64::INFINITY, f64::min);
        let mut slow = idle_cluster(2);
        for i in 0..2u32 {
            slow.node_mut(NodeId(i)).speed = 1000.0;
        }
        let slow_ctx = round_ctx(&env, &slow, &queues);
        assert!(!gslo_attainable(&slow_ctx, f, fastest * 2.0));
        // Offline nodes never count.
        let mut off = idle_cluster(1);
        off.node_mut(NodeId(0)).online = false;
        let off_ctx = round_ctx(&env, &off, &queues);
        assert!(!gslo_attainable(&off_ctx, f, 1e9));
        // Capacity in use does NOT make a deadline unattainable (fit is
        // judged on totals), it only defers.
        let mut busy = idle_cluster(1);
        busy.node_mut(NodeId(0)).free = Resources::ZERO;
        let busy_ctx = round_ctx(&env, &busy, &queues);
        assert!(gslo_attainable(&busy_ctx, f, 1e9));
    }

    #[test]
    fn policy_spec_builds_sim_stacks() {
        assert!(PolicySpec::Classic
            .sim_stack()
            .expect("classic")
            .is_classic());
        let adm = PolicySpec::slo_admission().sim_stack().expect("sim stage");
        assert_eq!(adm.stage_names(), vec!["slo-admission"]);
        assert!(PolicySpec::packing().sim_stack().is_none());
        assert!(PolicySpec::packing_with_admission().sim_stack().is_none());
        assert_eq!(PolicySpec::packing_with_admission().label(), "pack+admit");
        assert_eq!(PolicySpec::default(), PolicySpec::Classic);
    }

    #[test]
    fn stack_tallies_final_deferrals_from_decisions() {
        // queues_deferred counts the round's FINAL defer decisions: a
        // shed (which out-severities a defer vote) and a dispatch must
        // not count, no matter what any stage voted.
        let env = SimEnv::standard(SloClass::Moderate);
        let cluster = idle_cluster(1);
        let queues: [QueueView<'_>; 0] = [];
        let ctx = round_ctx(&env, &cluster, &queues);
        let key = QueueKey {
            app: AppId(0),
            stage: 0,
        };
        let mut stack = PolicyStack::new().with(SloAdmission::default());
        stack.observe(
            &ctx,
            &[
                (key, Outcome::defer(123.0)),
                (key, Outcome::shed(ShedReason::Overload)),
                (key, Outcome::single(Config::MIN, 1)),
                (key, Outcome::skip()), // plain skip: no defer horizon
            ],
        );
        assert_eq!(stack.policy_stats().queues_deferred, 1);
        assert_eq!(stack.policy_stats().queues_shed, 0, "stage saw no shed");
    }

    #[test]
    fn policy_stats_merge_and_stack_debug() {
        let a = PolicyStats {
            queues_shed: 1,
            jobs_shed: 3,
            queues_deferred: 2,
        };
        let b = PolicyStats {
            queues_shed: 2,
            jobs_shed: 1,
            queues_deferred: 0,
        };
        let m = a.merge(b);
        assert_eq!(m.queues_shed, 3);
        assert_eq!(m.jobs_shed, 4);
        assert_eq!(m.queues_deferred, 2);
        let stack = PolicyStack::new().with(SloAdmission::default());
        assert_eq!(
            format!("{stack:?}"),
            "PolicyStack { stages: [\"slo-admission\"] }"
        );
        assert_eq!(
            ShedReason::GsloUnattainable.to_string(),
            "gslo-unattainable"
        );
        assert_eq!(ShedReason::Overload.to_string(), "overload");
    }
}
