//! The contended GPU data plane: per-node bandwidth pools, host-memory
//! staging, and fair-share transfer progress.
//!
//! The scalar transfer model (`esg_profile::TransferModel`) prices a
//! batch's input movement as a fixed latency — contention-free, so
//! co-locating transfer-heavy stages and spreading them apart cost the
//! same under load. FaaSTube and HAS-GPU (PAPERS.md) show the opposite:
//! GPU-serverless transfer time is dominated by *contended* PCIe/NVLink
//! bandwidth and host-memory staging of intermediate tensors. This
//! module models exactly that, as an opt-in refinement
//! ([`SimConfig::data_plane`](crate::SimConfig)) over the same event
//! loop:
//!
//! * **Pools** — every node owns three [`BandwidthPool`]s fed by the
//!   `NodeClass` bandwidth fields: PCIe ingress (tensors arriving from
//!   remote producers or the gateway), PCIe egress (tensors leaving for
//!   remote consumers), and an intra-server NVLink class (same-node
//!   hand-offs). Capacity is in MB/ms (≡ GB/s).
//! * **Flows** — one dispatched batch is one aggregated flow (the
//!   platform already batches same-edge small tensors into a single
//!   rate/base aggregate). A flow's bandwidth demand is
//!   `total_mb / work_ms` and applies to *every* pool it touches; pools
//!   are shared fair-share style, so a flow's progress rate is
//!   `ρ = min(1, min_pool(capacity/members) / demand)`.
//! * **Re-planning** — a flow's finish is an [`Event`](crate::Event) in
//!   the simulation's [`EventQueue`](crate::EventQueue). When membership
//!   changes on any pool a flow shares, its ρ is recomputed; only a
//!   *bitwise* ρ change drains elapsed progress and re-plans the finish
//!   (a fresh event under a bumped generation; the stale event is
//!   skipped on pop). At effectively infinite bandwidth ρ is 1.0 for
//!   every flow forever, so no re-plan ever fires and the planned finish
//!   is the *same f64 expression* as the scalar model — dispatch traces
//!   stay bit-identical (`tests/dataplane_equivalence.rs`).
//! * **Staging** — remote ingress bytes must reserve room in the
//!   destination node's bounded host-memory staging buffer before the
//!   flow activates. When the buffer is full the flow queues FIFO — it
//!   is delayed, never dropped — and activates as completions free
//!   space.
//!
//! Live occupancy is exported as a [`DataPlaneView`] through
//! `RoundCtx::dataplane` so round policies (`BandwidthAwarePacking` in
//! `esg-core`) can fold estimated contention into their ranking, and as
//! a [`TransferSummary`] into `ExperimentResult` at the end of a run.

use crate::cluster::Cluster;
use crate::pinning::ServerMap;
use esg_model::{NodeClass, NodeId, ServerTopology, SimTime};
use std::collections::{BTreeMap, VecDeque};

/// Knobs for the contended data plane (`SimConfig::data_plane`;
/// `None` keeps the classic scalar model).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DataPlaneConfig {
    /// Multiplier on every `NodeClass` pool bandwidth (a huge value,
    /// e.g. `1e12`, makes the plane contention-free — the equivalence
    /// tests' configuration).
    pub bandwidth_scale: f64,
    /// Multiplier on every `NodeClass::staging_mb` buffer.
    pub staging_scale: f64,
    /// Same-edge tensors at or below this size, MB, count as batched
    /// into their edge's aggregated flow (accounting for the platform's
    /// per-dispatch transfer batching).
    pub batch_max_mb: f64,
}

impl Default for DataPlaneConfig {
    fn default() -> Self {
        DataPlaneConfig {
            bandwidth_scale: 1.0,
            staging_scale: 1.0,
            batch_max_mb: 8.0,
        }
    }
}

/// Pool classes per node, in index order.
const PCIE_IN: u8 = 0;
const PCIE_OUT: u8 = 1;
const NVLINK: u8 = 2;
/// The per-*server* top-of-rack uplink pool class. Membership tuples of
/// this kind index the server table, not the node table; only clusters
/// declaring a [`ServerTopology`] have ToR pools, and only flows with a
/// cross-server producer join them — intra-server and flat-cluster
/// flows see exactly the pre-topology pool set (and thus the same ρ).
const TOR: u8 = 3;

/// One contended link: a capacity in MB/ms and the number of flows
/// currently sharing it (each member gets `capacity / members`).
#[derive(Clone, Copy, Debug)]
pub struct BandwidthPool {
    /// Capacity, MB/ms (scaled by [`DataPlaneConfig::bandwidth_scale`]).
    pub capacity: f64,
    /// Flows currently sharing the pool.
    pub members: u32,
}

impl BandwidthPool {
    /// The fair share one member gets, MB/ms.
    #[inline]
    pub fn share(&self) -> f64 {
        if self.members == 0 {
            self.capacity
        } else {
            self.capacity / self.members as f64
        }
    }
}

/// The three pools of one node.
#[derive(Clone, Copy, Debug)]
struct NodePools {
    pools: [BandwidthPool; 3],
}

/// Host-memory staging for one node: a bounded buffer plus the FIFO of
/// flows waiting for room.
#[derive(Clone, Debug)]
struct Staging {
    capacity_mb: f64,
    used_mb: f64,
    queue: VecDeque<u64>,
}

impl Staging {
    /// Whether a reservation of `mb` can be admitted now. An oversized
    /// reservation (larger than the whole buffer) is admitted when the
    /// buffer is empty, so every flow eventually progresses — delayed,
    /// never dropped.
    fn fits(&self, mb: f64) -> bool {
        self.used_mb + mb <= self.capacity_mb || self.used_mb == 0.0
    }
}

/// One aggregated transfer request: the pre-exec data movement of one
/// dispatched batch, as computed by the platform's dispatch path.
#[derive(Clone, Debug)]
pub struct TransferReq {
    /// The running-task id the flow belongs to.
    pub task: u64,
    /// Destination node index.
    pub dst: usize,
    /// Distinct remote producer node indices (each contributes PCIe
    /// egress membership); gateway inputs have no producer entry.
    pub remote_srcs: Vec<usize>,
    /// MB arriving over the destination's PCIe ingress (remote
    /// producers + gateway).
    pub remote_mb: f64,
    /// MB moving over the destination's intra-server NVLink class
    /// (same-node producers).
    pub local_mb: f64,
    /// Progress at rate 1 regardless of bandwidth: cold start plus the
    /// scalar base latency (`cold_ms + base_ms`), ms.
    pub base_ms: f64,
    /// Bandwidth-shaped portion: the scalar per-MB rate sum
    /// (`rate_ms`), ms at full rate.
    pub work_ms: f64,
    /// The classic scalar pre-exec total, grouped *exactly* as the
    /// scalar model computes it: `cold_ms + (base_ms + rate_ms)`. The
    /// uncontended (ρ = 1) plan reuses this value verbatim so the
    /// planned finish is bit-identical to the scalar event time.
    pub scalar_total_ms: f64,
    /// Same-edge small tensors merged into this aggregated flow beyond
    /// the first per edge (observability only).
    pub batched_small: u32,
    /// MB arriving from producers in a *different server* than the
    /// destination (0 on flat clusters) — the cross-ToR traffic the
    /// locality-first pinning tier tries to eliminate.
    pub cross_mb: f64,
}

impl TransferReq {
    fn total_mb(&self) -> f64 {
        self.remote_mb + self.local_mb
    }
}

/// A re-planned finish to (re-)schedule: `(task, generation, finish)`.
pub type Replan = (u64, u64, SimTime);

/// A staged flow that just activated (schedule + notify started).
#[derive(Clone, Debug)]
pub struct Activation {
    /// Task id of the activated flow.
    pub task: u64,
    /// Its new event generation.
    pub gen: u64,
    /// Its planned finish.
    pub finish: SimTime,
    /// Destination node index (for notifications).
    pub node: usize,
    /// Total MB of the flow.
    pub mb: f64,
}

/// The outcome of [`DataPlane::begin`].
#[derive(Clone, Debug)]
pub enum Admission {
    /// The flow activated immediately; schedule its finish and push any
    /// re-plans of flows whose share it changed.
    Active {
        /// Event generation of the planned finish.
        gen: u64,
        /// Planned finish time.
        finish: SimTime,
        /// Finishes of other flows to re-schedule.
        replans: Vec<Replan>,
    },
    /// The destination staging buffer is full; the flow queued and will
    /// activate (FIFO) as space frees.
    Queued,
}

/// The outcome of a completed [`DataPlane::on_due`] (a stale generation
/// returns `None` instead).
#[derive(Clone, Debug, Default)]
pub struct DueOutcome {
    /// Pre-exec elapsed for the completed flow (dispatch → now), ms.
    pub elapsed_ms: f64,
    /// Destination node of the completed flow.
    pub node: usize,
    /// Total MB of the completed flow.
    pub mb: f64,
    /// Finishes of still-running flows to re-schedule.
    pub replans: Vec<Replan>,
    /// Staged flows that activated on the freed space.
    pub activated: Vec<Activation>,
}

/// Live per-node occupancy, for round policies (`RoundCtx::dataplane`).
#[derive(Clone, Debug, Default)]
pub struct DataPlaneView {
    nodes: Vec<NodeLoad>,
}

/// One node's live data-plane load.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeLoad {
    /// Flows sharing the PCIe ingress pool.
    pub active_in: u32,
    /// Flows sharing the PCIe egress pool.
    pub active_out: u32,
    /// Flows sharing the NVLink pool.
    pub active_nvlink: u32,
    /// Flows queued for staging space.
    pub queued: u32,
    /// Staging buffer in use, MB.
    pub staging_used_mb: f64,
    /// Staging buffer capacity, MB.
    pub staging_cap_mb: f64,
    /// PCIe ingress capacity, MB/ms.
    pub pcie_in_capacity: f64,
}

impl DataPlaneView {
    /// A view over explicit per-node loads (policy tests and benches
    /// synthesise contention states without running a data plane).
    pub fn from_loads(nodes: Vec<NodeLoad>) -> DataPlaneView {
        DataPlaneView { nodes }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the view covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The load of node `i`.
    pub fn node(&self, i: usize) -> &NodeLoad {
        &self.nodes[i]
    }

    /// Flows contending for node `i`'s ingress path — active ingress
    /// members plus flows queued for staging (the estimated-contention
    /// term bandwidth-aware ranking uses).
    pub fn contending_flows(&self, i: usize) -> u32 {
        let n = &self.nodes[i];
        n.active_in + n.queued
    }
}

/// Cumulative per-node transfer counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NodeTransferStats {
    /// Flows activated on this node (as destination).
    pub started: u64,
    /// Flows completed on this node.
    pub completed: u64,
    /// Flows that had to queue for staging space.
    pub queued: u64,
    /// Cumulative MB moved to this node.
    pub mb: f64,
    /// Max concurrent members across the node's pools.
    pub peak_active: u32,
    /// High-water mark of the staging buffer, MB.
    pub peak_staging_mb: f64,
}

/// End-of-run transfer rollup (`ExperimentResult::transfers`); all
/// zeros/empty when the data plane is off.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TransferSummary {
    /// Flows activated.
    pub started: u64,
    /// Flows completed.
    pub completed: u64,
    /// Flows that queued for staging.
    pub queued: u64,
    /// Same-edge small tensors batched into aggregated flows.
    pub batched_small: u64,
    /// Finish re-plans caused by pool membership changes.
    pub replans: u64,
    /// Cumulative MB moved.
    pub total_mb: f64,
    /// MB that crossed a server boundary (through ToR pools); 0 on flat
    /// clusters, and strictly less than `total_mb` when locality-first
    /// routing keeps hot workflows intra-server.
    pub cross_server_mb: f64,
    /// Max concurrent members on any single pool.
    pub peak_active: u32,
    /// High-water mark of any staging buffer, MB.
    pub peak_staging_mb: f64,
    /// Per-node breakdown, node-index order.
    pub per_node: Vec<NodeTransferStats>,
}

/// The flow's drain state while active.
#[derive(Clone, Debug)]
struct ActiveFlow {
    rho: f64,
    demand: f64,
    base_left: f64,
    work_left: f64,
    last_update: SimTime,
    pools: Vec<(usize, u8)>,
}

#[derive(Clone, Debug)]
enum FlowState {
    Queued,
    Active(ActiveFlow),
}

#[derive(Clone, Debug)]
struct Flow {
    gen: u64,
    req: TransferReq,
    dispatched_at: SimTime,
    state: FlowState,
}

/// The data-plane subsystem: pools, staging, and the active-flow table.
#[derive(Clone, Debug)]
pub struct DataPlane {
    cfg: DataPlaneConfig,
    pools: Vec<NodePools>,
    /// Per-server ToR uplink pools (empty on flat clusters).
    tor: Vec<BandwidthPool>,
    /// The node→server assignment (`None` on flat clusters).
    servers: Option<ServerMap>,
    staging: Vec<Staging>,
    /// Flows by task id — a `BTreeMap` so re-plan sweeps visit flows in
    /// deterministic (task-id) order regardless of hashing.
    flows: BTreeMap<u64, Flow>,
    view: DataPlaneView,
    stats: Vec<NodeTransferStats>,
    batched_small: u64,
    replans: u64,
    cross_mb: f64,
}

impl DataPlane {
    /// Builds pools and staging buffers from the live cluster's node
    /// classes; a declared `topology` additionally maps nodes onto
    /// servers sharing one ToR uplink pool each.
    pub fn new(
        cfg: DataPlaneConfig,
        cluster: &Cluster,
        topology: Option<ServerTopology>,
    ) -> DataPlane {
        let servers = topology.map(|t| ServerMap::from_topology(&t, cluster.len()));
        let tor = match (&servers, &topology) {
            (Some(map), Some(t)) => vec![
                BandwidthPool {
                    capacity: t.tor_gbps * cfg.bandwidth_scale,
                    members: 0,
                };
                map.num_servers()
            ],
            _ => Vec::new(),
        };
        let mut dp = DataPlane {
            cfg,
            pools: Vec::new(),
            tor,
            servers,
            staging: Vec::new(),
            flows: BTreeMap::new(),
            view: DataPlaneView::default(),
            stats: Vec::new(),
            batched_small: 0,
            replans: 0,
            cross_mb: 0.0,
        };
        for node in cluster.nodes() {
            dp.push_node(&node.class);
        }
        dp.sync_view();
        dp
    }

    /// The configured knobs.
    pub fn config(&self) -> DataPlaneConfig {
        self.cfg
    }

    /// The pool a membership tuple names: `TOR` entries index the
    /// server table, everything else a node's pool triple.
    fn pool(&self, idx: usize, kind: u8) -> &BandwidthPool {
        if kind == TOR {
            &self.tor[idx]
        } else {
            &self.pools[idx].pools[kind as usize]
        }
    }

    fn pool_mut(&mut self, idx: usize, kind: u8) -> &mut BandwidthPool {
        if kind == TOR {
            &mut self.tor[idx]
        } else {
            &mut self.pools[idx].pools[kind as usize]
        }
    }

    /// A churn join added a node of `class`: grow pools, staging, and
    /// counters to match the cluster. Under a server topology the new
    /// node is unassigned (no ToR pool) until re-planned.
    pub fn note_join(&mut self, class: &NodeClass) {
        self.push_node(class);
        if let Some(map) = self.servers.as_mut() {
            map.note_join();
        }
        self.sync_view();
    }

    fn push_node(&mut self, class: &NodeClass) {
        let scale = self.cfg.bandwidth_scale;
        let pool = |gbps: f64| BandwidthPool {
            capacity: gbps * scale,
            members: 0,
        };
        self.pools.push(NodePools {
            pools: [
                pool(class.pcie_in_gbps),
                pool(class.pcie_out_gbps),
                pool(class.nvlink_gbps),
            ],
        });
        self.staging.push(Staging {
            capacity_mb: class.staging_mb * self.cfg.staging_scale,
            used_mb: 0.0,
            queue: VecDeque::new(),
        });
        self.stats.push(NodeTransferStats::default());
    }

    /// Admits the pre-exec flow of a freshly dispatched batch at `now`
    /// (the dispatch instant).
    pub fn begin(&mut self, req: TransferReq, now: SimTime) -> Admission {
        self.batched_small += req.batched_small as u64;
        let task = req.task;
        let dst = req.dst;
        let staged = req.remote_mb;
        self.flows.insert(
            task,
            Flow {
                gen: 0,
                req,
                dispatched_at: now,
                state: FlowState::Queued,
            },
        );
        let admitted = staged <= 0.0 || {
            let s = &self.staging[dst];
            s.queue.is_empty() && s.fits(staged)
        };
        let out = if admitted {
            self.reserve_staging(dst, staged);
            let (gen, finish, replans) = self.activate(task, now);
            Admission::Active {
                gen,
                finish,
                replans,
            }
        } else {
            self.staging[dst].queue.push_back(task);
            self.stats[dst].queued += 1;
            Admission::Queued
        };
        self.sync_view();
        out
    }

    /// Handles a `TransferDue(task, gen)` event. Returns `None` when the
    /// generation is stale (the flow was re-planned after this event was
    /// scheduled); otherwise the flow is complete — release its
    /// resources, re-plan affected flows, and activate queued ones.
    pub fn on_due(&mut self, task: u64, gen: u64, now: SimTime) -> Option<DueOutcome> {
        match self.flows.get(&task) {
            Some(f) if f.gen == gen && matches!(f.state, FlowState::Active(_)) => {}
            _ => return None,
        }
        let flow = self.flows.remove(&task).expect("flow checked present");
        let FlowState::Active(active) = flow.state else {
            unreachable!("flow checked active")
        };
        let dst = flow.req.dst;
        let staged = flow.req.remote_mb;
        for &(idx, kind) in &active.pools {
            self.pool_mut(idx, kind).members -= 1;
        }
        self.release_staging(dst, staged);
        self.stats[dst].completed += 1;
        let mut out = DueOutcome {
            elapsed_ms: now.saturating_since(flow.dispatched_at).as_ms(),
            node: dst,
            mb: flow.req.total_mb(),
            replans: self.recompute_members(&active.pools, now, u64::MAX),
            activated: Vec::new(),
        };
        // Freed staging space activates waiting flows FIFO; each
        // activation can in turn squeeze shares, so re-plans chain.
        while let Some(&head) = self.staging[dst].queue.front() {
            let mb = self.flows[&head].req.remote_mb;
            if !self.staging[dst].fits(mb) {
                break;
            }
            self.staging[dst].queue.pop_front();
            self.reserve_staging(dst, mb);
            let total = self.flows[&head].req.total_mb();
            let (gen, finish, replans) = self.activate(head, now);
            out.replans.extend(replans);
            out.activated.push(Activation {
                task: head,
                gen,
                finish,
                node: dst,
                mb: total,
            });
        }
        self.sync_view();
        Some(out)
    }

    /// Live occupancy (kept in sync after every mutation).
    pub fn view(&self) -> &DataPlaneView {
        &self.view
    }

    /// The end-of-run rollup.
    pub fn summary(&self) -> TransferSummary {
        let mut s = TransferSummary {
            batched_small: self.batched_small,
            replans: self.replans,
            cross_server_mb: self.cross_mb,
            per_node: self.stats.clone(),
            ..TransferSummary::default()
        };
        for n in &self.stats {
            s.started += n.started;
            s.completed += n.completed;
            s.queued += n.queued;
            s.total_mb += n.mb;
            s.peak_active = s.peak_active.max(n.peak_active);
            s.peak_staging_mb = s.peak_staging_mb.max(n.peak_staging_mb);
        }
        s
    }

    /// Activates `task` at `now`: joins its pools, plans its finish, and
    /// re-plans every other flow whose share changed.
    fn activate(&mut self, task: u64, now: SimTime) -> (u64, SimTime, Vec<Replan>) {
        let flow = self.flows.get_mut(&task).expect("activating a known flow");
        let req = &flow.req;
        let mut pools: Vec<(usize, u8)> = Vec::new();
        if req.work_ms > 0.0 {
            if req.remote_mb > 0.0 {
                pools.push((req.dst, PCIE_IN));
                for &src in &req.remote_srcs {
                    pools.push((src, PCIE_OUT));
                }
                // Cross-server producers additionally contend for the
                // ToR uplinks on both ends. Intra-server and gateway
                // traffic joins no ToR pool, so a topology cluster with
                // purely local routing shares exactly the flat pool set.
                if let Some(map) = &self.servers {
                    let dst_srv = map.server_of(NodeId(req.dst as u32));
                    let mut cross: Vec<usize> = Vec::new();
                    for &src in &req.remote_srcs {
                        if let Some(s) = map.server_of(NodeId(src as u32)) {
                            if Some(s) != dst_srv && !cross.contains(&s) {
                                cross.push(s);
                            }
                        }
                    }
                    if !cross.is_empty() {
                        if let Some(d) = dst_srv {
                            pools.push((d, TOR));
                        }
                        for s in cross {
                            pools.push((s, TOR));
                        }
                    }
                }
            }
            if req.local_mb > 0.0 {
                pools.push((req.dst, NVLINK));
            }
        }
        let demand = if req.work_ms > 0.0 {
            req.total_mb() / req.work_ms
        } else {
            0.0
        };
        let (base_ms, work_ms, scalar_total_ms) = (req.base_ms, req.work_ms, req.scalar_total_ms);
        let total_mb = req.total_mb();
        let cross_mb = req.cross_mb;
        let dst = req.dst;
        flow.gen += 1;
        let gen = flow.gen;
        for &(idx, kind) in &pools {
            self.pool_mut(idx, kind).members += 1;
        }
        let rho = self.rho_of(&pools, demand);
        // ρ = 1 reproduces the scalar pre-exec window *bitwise*: the
        // f64 sum is grouped exactly as the classic model groups it.
        let finish = if rho == 1.0 {
            now + SimTime::from_ms(scalar_total_ms)
        } else {
            now + SimTime::from_ms(base_ms + work_ms / rho)
        };
        let flow = self.flows.get_mut(&task).expect("flow still present");
        flow.state = FlowState::Active(ActiveFlow {
            rho,
            demand,
            base_left: base_ms,
            work_left: work_ms,
            last_update: now,
            pools: pools.clone(),
        });
        self.cross_mb += cross_mb;
        let st = &mut self.stats[dst];
        st.started += 1;
        st.mb += total_mb;
        for &(idx, kind) in &pools {
            let members = self.pool(idx, kind).members;
            // ToR members peak on the destination node's counter (the
            // server table has no per-node stats row).
            let stat_node = if kind == TOR { dst } else { idx };
            let peak = &mut self.stats[stat_node].peak_active;
            *peak = (*peak).max(members);
        }
        let replans = self.recompute_members(&pools, now, task);
        (gen, finish, replans)
    }

    /// Re-plans every active flow (except `skip`) sharing any of
    /// `touched`, in task-id order. Only a bitwise ρ change re-plans —
    /// an unchanged share leaves the planned finish untouched.
    fn recompute_members(
        &mut self,
        touched: &[(usize, u8)],
        now: SimTime,
        skip: u64,
    ) -> Vec<Replan> {
        let affected: Vec<u64> = self
            .flows
            .iter()
            .filter(|(&id, f)| {
                id != skip
                    && match &f.state {
                        FlowState::Active(a) => a.pools.iter().any(|p| touched.contains(p)),
                        FlowState::Queued => false,
                    }
            })
            .map(|(&id, _)| id)
            .collect();
        let mut replans = Vec::new();
        for id in affected {
            let (pools, demand) = {
                let FlowState::Active(a) = &self.flows[&id].state else {
                    unreachable!("affected flows are active")
                };
                (a.pools.clone(), a.demand)
            };
            let rho = self.rho_of(&pools, demand);
            let flow = self.flows.get_mut(&id).expect("affected flow present");
            let FlowState::Active(a) = &mut flow.state else {
                unreachable!("affected flows are active")
            };
            if rho == a.rho {
                continue;
            }
            // Drain elapsed progress at the old rate: the base portion
            // runs at rate 1, the work portion at ρ.
            let elapsed = now.saturating_since(a.last_update).as_ms();
            if elapsed <= a.base_left {
                a.base_left -= elapsed;
            } else {
                a.work_left = (a.work_left - (elapsed - a.base_left) * a.rho).max(0.0);
                a.base_left = 0.0;
            }
            a.last_update = now;
            a.rho = rho;
            flow.gen += 1;
            let finish = now + SimTime::from_ms(a.base_left + a.work_left / rho);
            self.replans += 1;
            replans.push((id, flow.gen, finish));
        }
        replans
    }

    /// The progress rate of a flow with `demand` MB/ms across `pools`:
    /// `min(1, min_pool(share) / demand)`.
    fn rho_of(&self, pools: &[(usize, u8)], demand: f64) -> f64 {
        if pools.is_empty() || demand <= 0.0 {
            return 1.0;
        }
        let min_share = pools
            .iter()
            .map(|&(idx, kind)| self.pool(idx, kind).share())
            .fold(f64::INFINITY, f64::min);
        (min_share / demand).min(1.0)
    }

    fn reserve_staging(&mut self, node: usize, mb: f64) {
        if mb <= 0.0 {
            return;
        }
        let s = &mut self.staging[node];
        s.used_mb += mb;
        let peak = &mut self.stats[node].peak_staging_mb;
        *peak = peak.max(s.used_mb);
    }

    fn release_staging(&mut self, node: usize, mb: f64) {
        if mb <= 0.0 {
            return;
        }
        let s = &mut self.staging[node];
        s.used_mb = (s.used_mb - mb).max(0.0);
    }

    fn sync_view(&mut self) {
        self.view.nodes.clear();
        for i in 0..self.pools.len() {
            let p = &self.pools[i].pools;
            let s = &self.staging[i];
            self.view.nodes.push(NodeLoad {
                active_in: p[PCIE_IN as usize].members,
                active_out: p[PCIE_OUT as usize].members,
                active_nvlink: p[NVLINK as usize].members,
                queued: s.queue.len() as u32,
                staging_used_mb: s.used_mb,
                staging_cap_mb: s.capacity_mb,
                pcie_in_capacity: p[PCIE_IN as usize].capacity,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use esg_model::ClusterSpec;

    fn plane(cfg: DataPlaneConfig, classes: &[NodeClass]) -> DataPlane {
        let spec = ClusterSpec {
            name: "test".into(),
            nodes: classes.to_vec(),
            topology: None,
        };
        DataPlane::new(cfg, &Cluster::from_spec(&spec), None)
    }

    /// A 4-node plane grouped 2-per-server with a `tor_gbps` ToR uplink.
    fn topo_plane(tor_gbps: f64) -> DataPlane {
        let class = NodeClass::a100().with_bandwidth(10.0, 10.0, 10.0);
        let spec = ClusterSpec {
            name: "test".into(),
            nodes: vec![class.clone(), class.clone(), class.clone(), class],
            topology: Some(ServerTopology::new(2, tor_gbps)),
        };
        DataPlane::new(
            DataPlaneConfig::default(),
            &Cluster::from_spec(&spec),
            spec.topology,
        )
    }

    /// A remote flow into node 0 whose demand saturates a `capacity`
    /// MB/ms ingress solo: `total_mb / work_ms == capacity`.
    fn req(task: u64, total_mb: f64, work_ms: f64) -> TransferReq {
        TransferReq {
            task,
            dst: 0,
            remote_srcs: vec![1],
            remote_mb: total_mb,
            local_mb: 0.0,
            base_ms: 0.0,
            work_ms,
            scalar_total_ms: work_ms,
            batched_small: 0,
            cross_mb: 0.0,
        }
    }

    fn finish_of(adm: &Admission) -> SimTime {
        match adm {
            Admission::Active { finish, .. } => *finish,
            Admission::Queued => panic!("expected an active admission"),
        }
    }

    #[test]
    fn solo_flow_matches_scalar_time() {
        // Capacity 10 MB/ms, demand 10 MB/ms: solo ρ = 1, finish is the
        // scalar expression verbatim.
        let class = NodeClass::a100().with_bandwidth(10.0, 10.0, 10.0);
        let mut dp = plane(DataPlaneConfig::default(), &[class.clone(), class]);
        let adm = dp.begin(req(1, 100.0, 10.0), SimTime::ZERO);
        assert_eq!(finish_of(&adm), SimTime::from_ms(10.0));
        assert!(matches!(adm, Admission::Active { ref replans, .. } if replans.is_empty()));
    }

    #[test]
    fn two_flows_on_one_pool_halve_each_other() {
        let class = NodeClass::a100().with_bandwidth(10.0, 10.0, 10.0);
        let mut dp = plane(DataPlaneConfig::default(), &[class.clone(), class]);
        // Flow 1 saturates ingress solo (ρ = 1, finish at 10 ms).
        let a1 = dp.begin(req(1, 100.0, 10.0), SimTime::ZERO);
        assert_eq!(finish_of(&a1), SimTime::from_ms(10.0));
        // Flow 2 joins at t = 4: both now get half the pool (ρ = ½).
        let a2 = dp.begin(req(2, 100.0, 10.0), SimTime::from_ms(4.0));
        // Flow 2 runs its whole 10 ms work window at ½ rate → 20 ms.
        assert_eq!(finish_of(&a2), SimTime::from_ms(24.0));
        // Flow 1 drained 4 ms at full rate; 6 ms left doubles to 12.
        let Admission::Active { replans, .. } = a2 else {
            panic!("flow 2 must activate")
        };
        assert_eq!(replans, vec![(1, 2, SimTime::from_ms(16.0))]);
        // Flow 1's original event at 10 ms is now stale.
        assert!(dp.on_due(1, 1, SimTime::from_ms(10.0)).is_none());
        // Its re-planned finish completes and restores flow 2 to full
        // rate: 8 ms of work left at ½ becomes 4 ms.
        let out = dp.on_due(1, 2, SimTime::from_ms(16.0)).expect("completes");
        assert_eq!(out.replans, vec![(2, 2, SimTime::from_ms(20.0))]);
        assert!(dp.on_due(2, 2, SimTime::from_ms(20.0)).is_some());
        let s = dp.summary();
        assert_eq!((s.started, s.completed, s.replans), (2, 2, 2));
    }

    #[test]
    fn infinite_bandwidth_never_replans() {
        let cfg = DataPlaneConfig {
            bandwidth_scale: 1e12,
            staging_scale: 1e12,
            ..DataPlaneConfig::default()
        };
        let class = NodeClass::t4();
        let mut dp = plane(cfg, &[class.clone(), class]);
        for task in 0..50u64 {
            let adm = dp.begin(req(task, 500.0, 25.0), SimTime::ZERO);
            assert_eq!(finish_of(&adm), SimTime::from_ms(25.0));
            let Admission::Active { replans, .. } = adm else {
                panic!("must activate")
            };
            assert!(replans.is_empty(), "ρ stays 1.0 at infinite capacity");
        }
        assert_eq!(dp.summary().replans, 0);
    }

    #[test]
    fn staging_backpressure_delays_never_drops() {
        let class = NodeClass::a100()
            .with_bandwidth(10.0, 10.0, 10.0)
            .with_staging_mb(100.0);
        let mut dp = plane(DataPlaneConfig::default(), &[class.clone(), class]);
        // 80 MB fits; the second 80 MB flow must queue.
        let a1 = dp.begin(req(1, 80.0, 8.0), SimTime::ZERO);
        assert_eq!(finish_of(&a1), SimTime::from_ms(8.0));
        assert!(matches!(
            dp.begin(req(2, 80.0, 8.0), SimTime::ZERO),
            Admission::Queued
        ));
        assert_eq!(dp.view().contending_flows(0), 2);
        assert_eq!(dp.view().node(0).queued, 1);
        // Flow 1 completes → flow 2 activates from *now*, full window.
        let out = dp.on_due(1, 1, SimTime::from_ms(8.0)).expect("completes");
        assert_eq!(out.activated.len(), 1);
        let act = &out.activated[0];
        assert_eq!((act.task, act.finish), (2, SimTime::from_ms(16.0)));
        assert!(dp.on_due(2, act.gen, act.finish).is_some());
        let s = dp.summary();
        assert_eq!((s.started, s.completed, s.queued), (2, 2, 1));
        assert_eq!(s.peak_staging_mb, 80.0);
    }

    #[test]
    fn oversized_reservation_waits_for_an_empty_buffer() {
        let class = NodeClass::a100()
            .with_bandwidth(10.0, 10.0, 10.0)
            .with_staging_mb(50.0);
        let mut dp = plane(DataPlaneConfig::default(), &[class.clone(), class]);
        let _ = dp.begin(req(1, 40.0, 4.0), SimTime::ZERO);
        // 120 MB exceeds the whole buffer: queued, not dropped…
        assert!(matches!(
            dp.begin(req(2, 120.0, 12.0), SimTime::ZERO),
            Admission::Queued
        ));
        // …and admitted the moment the buffer is empty.
        let out = dp.on_due(1, 1, SimTime::from_ms(4.0)).expect("completes");
        assert_eq!(out.activated.len(), 1);
        assert_eq!(out.activated[0].task, 2);
    }

    #[test]
    fn join_grows_the_plane() {
        let class = NodeClass::a100();
        let mut dp = plane(DataPlaneConfig::default(), &[class]);
        assert_eq!(dp.view().len(), 1);
        dp.note_join(&NodeClass::t4());
        assert_eq!(dp.view().len(), 2);
        assert_eq!(dp.view().node(1).pcie_in_capacity, 8.0);
    }

    /// A flow `src → dst` whose demand saturates a `10` MB/ms endpoint
    /// solo, with `cross_mb` marked for topology cases.
    fn req_edge(
        task: u64,
        src: usize,
        dst: usize,
        total_mb: f64,
        work_ms: f64,
        cross: bool,
    ) -> TransferReq {
        TransferReq {
            remote_srcs: vec![src],
            dst,
            cross_mb: if cross { total_mb } else { 0.0 },
            ..req(task, total_mb, work_ms)
        }
    }

    #[test]
    fn narrow_tor_throttles_only_cross_server_flows() {
        // Servers {0,1} and {2,3}; endpoints 10 MB/ms, ToR 5 MB/ms.
        // Intra-server (1 → 0) never touches a ToR pool: ρ = 1, the
        // same finish a flat cluster plans.
        let mut dp = topo_plane(5.0);
        let adm = dp.begin(req_edge(1, 1, 0, 100.0, 10.0, false), SimTime::ZERO);
        assert_eq!(finish_of(&adm), SimTime::from_ms(10.0));
        assert!(dp.on_due(1, 1, SimTime::from_ms(10.0)).is_some());
        // Cross-server (2 → 0) shares both ToR uplinks: the 5 MB/ms
        // ToR halves a 10 MB/ms demand → ρ = ½, 10 ms of work → 20 ms.
        let adm = dp.begin(req_edge(2, 2, 0, 100.0, 10.0, true), SimTime::ZERO);
        assert_eq!(finish_of(&adm), SimTime::from_ms(20.0));
        assert!(dp.on_due(2, 1, SimTime::from_ms(20.0)).is_some());
        let s = dp.summary();
        assert_eq!(s.completed, 2);
        assert_eq!(s.total_mb, 200.0);
        assert_eq!(s.cross_server_mb, 100.0);
    }

    #[test]
    fn cross_server_flows_contend_on_the_destination_tor() {
        // ToR 10 MB/ms matches the endpoints: one cross flow runs at
        // ρ = 1. A second cross flow into a *different node of the same
        // destination server* shares no endpoint pool with the first —
        // only the two ToR uplinks — yet both halve to ρ = ½.
        let mut dp = topo_plane(10.0);
        let a1 = dp.begin(req_edge(1, 2, 0, 100.0, 10.0, true), SimTime::ZERO);
        assert_eq!(finish_of(&a1), SimTime::from_ms(10.0));
        let a2 = dp.begin(req_edge(2, 3, 1, 100.0, 10.0, true), SimTime::from_ms(4.0));
        assert_eq!(finish_of(&a2), SimTime::from_ms(24.0));
        let Admission::Active { replans, .. } = a2 else {
            panic!("flow 2 must activate")
        };
        assert_eq!(replans, vec![(1, 2, SimTime::from_ms(16.0))]);
    }

    #[test]
    fn joined_nodes_are_unassigned_and_skip_tor_pools() {
        let mut dp = topo_plane(5.0);
        dp.note_join(&NodeClass::a100().with_bandwidth(10.0, 10.0, 10.0));
        // Node 4 belongs to no server: its traffic joins no ToR pool
        // even on a topology cluster (ρ stays endpoint-limited).
        let adm = dp.begin(req_edge(1, 4, 0, 100.0, 10.0, true), SimTime::ZERO);
        assert_eq!(finish_of(&adm), SimTime::from_ms(10.0));
    }
}
