//! The scheduler-facing cluster state, maintained incrementally by the
//! platform.
//!
//! Before this module existed the platform rebuilt an owned snapshot —
//! one `NodeView` per node, each cloning its warm-function set — for
//! *every* scheduling decision, which made cluster visibility the last
//! per-dispatch allocation on the serving hot path. [`ClusterState`]
//! replaces the snapshot-rebuild contract:
//!
//! * the platform owns one `ClusterState` for the whole run and updates
//!   it **in place**: [`touch`](ClusterState::touch) marks a node whose
//!   cluster-side record changed (dispatch commit, completion release,
//!   pre-warm install, drain), [`note_join`](ClusterState::note_join)
//!   appends a freshly joined node, and
//!   [`refresh`](ClusterState::refresh) re-syncs exactly the nodes that
//!   are dirty — or whose warm set can have changed *passively* (a slot
//!   expiring, a pre-warmed container becoming ready) since the last
//!   sync. Warm sets are sorted slices rebuilt into retained buffers, so
//!   steady-state refreshes allocate nothing (asserted by the
//!   `snapshot-vs-incremental` ablation in `cargo bench --bench
//!   overhead`);
//! * schedulers *borrow* the state (`SchedCtx::cluster`,
//!   `RoundCtx::cluster`) instead of receiving a fresh copy, and use the
//!   same query helpers that lived on the old snapshot type —
//!   [`feasible`](ClusterState::feasible),
//!   [`most_free`](ClusterState::most_free),
//!   [`fastest_fit`](ClusterState::fastest_fit),
//!   [`speed_of`](ClusterState::speed_of);
//! * every observable change bumps a [`generation`](ClusterState::generation)
//!   stamp, so caching schedulers can cheaply detect "the cluster moved
//!   under me" between rounds.
//!
//! Equivalence with the old contract is pinned two ways: the
//! `validate_cluster_state` oracle (the platform rebuilds a from-scratch
//! snapshot at every refresh point and asserts equality) and the golden
//! digests of `tests/control_plane_equivalence.rs`.

use crate::cluster::{Cluster, Node};
use esg_model::{FnId, NodeId, Resources, SimTime};

/// One node as schedulers see it.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeView {
    /// Node id.
    pub id: NodeId,
    /// Free resources (total minus commitments; zero while draining).
    pub free: Resources,
    /// Total resources.
    pub total: Resources,
    /// Functions with a usable warm container right now, **sorted** —
    /// [`has_warm`](Self::has_warm) binary-searches it.
    pub warm: Vec<FnId>,
    /// Execution-latency scale factor of the node's class (1.0 = the
    /// Table-2 baseline the profiles were measured on; larger is slower).
    pub speed: f64,
    /// Remote-transfer latency scale factor of the node's class.
    pub link_scale: f64,
    /// False while the node drains: no new placements land here.
    pub online: bool,
}

impl NodeView {
    /// A baseline-class view: full capacity free, no warmth, Table-2
    /// scale factors. Tests and custom states tweak from here.
    pub fn idle(id: NodeId, total: Resources) -> NodeView {
        NodeView {
            id,
            free: total,
            total,
            warm: Vec::new(),
            speed: 1.0,
            link_scale: 1.0,
            online: true,
        }
    }

    /// True when the node has a warm container for `f` (binary search
    /// over the sorted warm set).
    pub fn has_warm(&self, f: FnId) -> bool {
        debug_assert!(
            self.warm.is_sorted(),
            "warm set must stay sorted (hand mutations must preserve order)"
        );
        self.warm.binary_search(&f).is_ok()
    }

    /// True when the node accepts placements and can host `demand`.
    pub fn fits(&self, demand: Resources) -> bool {
        self.online && self.free.contains(demand)
    }
}

/// The incrementally maintained cluster state schedulers decide against.
#[derive(Clone, Debug, Default)]
pub struct ClusterState {
    nodes: Vec<NodeView>,
    /// Platform mutated this node's record since its last sync.
    dirty: Vec<bool>,
    /// Next instant each node's warm set changes without a mutation
    /// (pending slot expiry / pre-warm readiness).
    warm_next_change: Vec<SimTime>,
    /// True when any node is dirty. Invariant: `!any_dirty` implies no
    /// entry of `dirty` is set (it may be conservatively true with none
    /// set; only a full [`refresh`](Self::refresh) clears it).
    any_dirty: bool,
    /// Lower bound on `min(warm_next_change)`: the earliest instant any
    /// node's warm set can change passively. With nothing dirty, a
    /// refresh strictly before this instant is a provable no-op and
    /// returns without scanning the node array at all — the scan used to
    /// be O(nodes) per controller round even in steady state, which the
    /// scale bench's hot loop surfaces.
    earliest_passive: SimTime,
    generation: u64,
}

impl ClusterState {
    /// A state over explicit node views (tests and custom scenarios).
    /// Warm sets are sorted on entry so `has_warm` may binary-search.
    pub fn from_views(mut nodes: Vec<NodeView>) -> ClusterState {
        for n in &mut nodes {
            n.warm.sort_unstable();
        }
        let len = nodes.len();
        ClusterState {
            nodes,
            dirty: vec![false; len],
            warm_next_change: vec![SimTime(u64::MAX); len],
            any_dirty: false,
            earliest_passive: SimTime(u64::MAX),
            generation: 0,
        }
    }

    /// A from-scratch snapshot of `cluster` at `now` — the pre-redesign
    /// per-decision rebuild. The platform uses it once at start-up (and
    /// under the `validate_cluster_state` oracle); the overhead bench's
    /// `snapshot-vs-incremental` ablation measures it against
    /// [`refresh`](Self::refresh).
    pub fn from_cluster(cluster: &Cluster, now: SimTime) -> ClusterState {
        let mut state = ClusterState::from_views(
            cluster
                .nodes()
                .iter()
                .map(|n| NodeView::idle(n.id, n.total))
                .collect(),
        );
        for i in 0..state.nodes.len() {
            state.sync_node(i, &cluster.nodes()[i], now);
        }
        state
    }

    /// All nodes, indexed by `NodeId`.
    #[inline]
    pub fn nodes(&self) -> &[NodeView] {
        &self.nodes
    }

    /// One node's view.
    #[inline]
    pub fn node(&self, id: NodeId) -> &NodeView {
        &self.nodes[id.index()]
    }

    /// Mutable access for hand-built states (tests tweaking free
    /// resources, speeds, warmth). Bumps the generation; hand mutations
    /// do not participate in incremental dirtiness tracking.
    pub fn node_mut(&mut self, id: NodeId) -> &mut NodeView {
        self.generation += 1;
        &mut self.nodes[id.index()]
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the state has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Monotone stamp, bumped whenever the observable state may have
    /// changed (platform mutation, passive warm-set change, join).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Marks `node` as mutated on the cluster side; the next
    /// [`refresh`](Self::refresh) re-syncs it.
    pub fn touch(&mut self, node: NodeId) {
        self.dirty[node.index()] = true;
        self.any_dirty = true;
        self.generation += 1;
    }

    /// Appends the view of a freshly joined node.
    pub fn note_join(&mut self, node: &Node, now: SimTime) {
        debug_assert_eq!(
            node.id.index(),
            self.nodes.len(),
            "join ids are append-only"
        );
        self.nodes.push(NodeView::idle(node.id, node.total));
        self.dirty.push(false);
        self.warm_next_change.push(SimTime(u64::MAX));
        let i = self.nodes.len() - 1;
        self.sync_node(i, node, now);
    }

    /// Re-syncs every node that is dirty or whose warm set can have
    /// changed passively since its last sync. In steady state (nothing
    /// dirty, no pending expiry) this touches nothing and allocates
    /// nothing.
    pub fn refresh(&mut self, cluster: &Cluster, now: SimTime) {
        debug_assert_eq!(self.nodes.len(), cluster.len(), "state tracks every node");
        if !self.any_dirty && now < self.earliest_passive {
            // Nothing mutated and no lease can have expired yet: the
            // whole scan would skip every node.
            return;
        }
        let mut earliest = SimTime(u64::MAX);
        for i in 0..self.nodes.len() {
            if self.dirty[i] || now >= self.warm_next_change[i] {
                self.sync_node(i, &cluster.nodes()[i], now);
            }
            if self.warm_next_change[i] < earliest {
                earliest = self.warm_next_change[i];
            }
        }
        self.any_dirty = false;
        self.earliest_passive = earliest;
    }

    fn sync_node(&mut self, i: usize, n: &Node, now: SimTime) {
        let v = &mut self.nodes[i];
        // Placement admits against commitments: a task in its init phase
        // still owns its slot. A draining node advertises nothing.
        v.free = if n.online {
            n.uncommitted()
        } else {
            Resources::ZERO
        };
        v.total = n.total;
        v.speed = n.class.speed;
        v.link_scale = n.class.link_scale;
        v.online = n.online;
        self.warm_next_change[i] = n.warm_functions_into(now, &mut v.warm);
        if self.warm_next_change[i] < self.earliest_passive {
            self.earliest_passive = self.warm_next_change[i];
        }
        self.dirty[i] = false;
        self.generation += 1;
    }

    /// True when the observable state has moved past the `generation`
    /// snapshot `gen`. The sharded controller's commit step validates
    /// each shard's staged round with this: a decision staged at `gen`
    /// may have been invalidated by another shard's commit when the
    /// state moved underneath it.
    #[inline]
    pub fn moved_since(&self, gen: u64) -> bool {
        self.generation != gen
    }

    /// Optimistic commit of a placement staged against an earlier
    /// snapshot: re-validates that `node` is still online with `demand`
    /// free, debits the view in place, and bumps the generation.
    /// Returns `false` — leaving the state untouched — when the
    /// placement no longer fits (the caller's round conflicted and must
    /// retry). Drives the scale bench's synthetic commit loop; the full
    /// platform commits through the cluster and [`touch`](Self::touch).
    pub fn try_commit(&mut self, node: NodeId, demand: Resources) -> bool {
        let Some(v) = self.nodes.get_mut(node.index()) else {
            return false;
        };
        if !(v.online && v.free.contains(demand)) {
            return false;
        }
        v.free -= demand;
        self.generation += 1;
        true
    }

    /// Nodes able to host `demand`.
    pub fn feasible(&self, demand: Resources) -> impl Iterator<Item = &NodeView> {
        self.nodes.iter().filter(move |n| n.fits(demand))
    }

    /// The feasible node with the most free resources (weighted), used for
    /// cold placement and the forced-minimum fallback. Deterministic
    /// tie-break on node id.
    pub fn most_free(&self, demand: Resources) -> Option<NodeId> {
        self.feasible(demand)
            .max_by(|a, b| {
                a.free
                    .weighted(1.0, 16.0 / 7.0)
                    .total_cmp(&b.free.weighted(1.0, 16.0 / 7.0))
                    .then(b.id.0.cmp(&a.id.0))
            })
            .map(|n| n.id)
    }

    /// The execution-latency scale factor of `node` (1.0 when out of
    /// range, which cannot happen for ids taken from this state).
    pub fn speed_of(&self, node: NodeId) -> f64 {
        self.nodes.get(node.index()).map_or(1.0, |n| n.speed)
    }

    /// The fastest (lowest speed factor) feasible node; ties broken by
    /// most free weighted resources, then node id. Speed-aware schedulers
    /// use this to bound how fast the cluster can run `demand` right now.
    pub fn fastest_fit(&self, demand: Resources) -> Option<NodeId> {
        self.feasible(demand)
            .min_by(|a, b| {
                a.speed
                    .total_cmp(&b.speed)
                    .then(
                        b.free
                            .weighted(1.0, 16.0 / 7.0)
                            .total_cmp(&a.free.weighted(1.0, 16.0 / 7.0)),
                    )
                    .then(a.id.0.cmp(&b.id.0))
            })
            .map(|n| n.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_state_queries() {
        let mut n0 = NodeView::idle(NodeId(0), Resources::new(16, 7));
        n0.free = Resources::new(2, 1);
        n0.warm = vec![FnId(1)];
        let mut n1 = NodeView::idle(NodeId(1), Resources::new(16, 7));
        n1.free = Resources::new(10, 3);
        let state = ClusterState::from_views(vec![n0, n1]);
        assert_eq!(state.feasible(Resources::new(4, 1)).count(), 1);
        assert_eq!(state.most_free(Resources::new(1, 1)), Some(NodeId(1)));
        assert_eq!(state.most_free(Resources::new(32, 1)), None);
        assert!(state.node(NodeId(0)).has_warm(FnId(1)));
        assert!(!state.node(NodeId(1)).has_warm(FnId(1)));
    }

    #[test]
    fn warm_sets_are_sorted_and_binary_searched() {
        let mut n = NodeView::idle(NodeId(0), Resources::new(16, 7));
        n.warm = vec![FnId(5), FnId(0), FnId(3)];
        let state = ClusterState::from_views(vec![n]);
        assert_eq!(state.node(NodeId(0)).warm, vec![FnId(0), FnId(3), FnId(5)]);
        for f in [0, 3, 5] {
            assert!(state.node(NodeId(0)).has_warm(FnId(f)));
        }
        for f in [1, 2, 4, 6] {
            assert!(!state.node(NodeId(0)).has_warm(FnId(f)));
        }
    }

    #[test]
    fn offline_nodes_are_never_feasible() {
        let mut n0 = NodeView::idle(NodeId(0), Resources::new(16, 7));
        n0.online = false;
        n0.free = Resources::ZERO; // the platform zeroes a draining node's view
        let n1 = NodeView::idle(NodeId(1), Resources::new(4, 2));
        let state = ClusterState::from_views(vec![n0, n1]);
        assert!(!state.node(NodeId(0)).fits(Resources::new(1, 0)));
        assert_eq!(state.feasible(Resources::new(1, 1)).count(), 1);
        assert_eq!(state.most_free(Resources::new(1, 1)), Some(NodeId(1)));
    }

    #[test]
    fn fastest_fit_prefers_low_speed_factor() {
        let mut slow = NodeView::idle(NodeId(0), Resources::new(16, 7));
        slow.speed = 2.2;
        let fast = NodeView::idle(NodeId(1), Resources::new(8, 2));
        let state = ClusterState::from_views(vec![slow, fast]);
        assert_eq!(state.fastest_fit(Resources::new(4, 1)), Some(NodeId(1)));
        // Demand only the slow node can host falls back to it.
        assert_eq!(state.fastest_fit(Resources::new(12, 4)), Some(NodeId(0)));
        assert_eq!(state.speed_of(NodeId(0)), 2.2);
        assert_eq!(state.speed_of(NodeId(1)), 1.0);
    }

    #[test]
    fn incremental_refresh_tracks_snapshot_rebuild() {
        use esg_model::NodeClass;
        let keep = SimTime::from_secs(600.0);
        let mut cluster = Cluster::new(3, Resources::new(16, 7));
        let t0 = SimTime::from_ms(0.0);
        let mut state = ClusterState::from_cluster(&cluster, t0);
        assert_eq!(
            state.nodes(),
            ClusterState::from_cluster(&cluster, t0).nodes()
        );

        // A dispatch-shaped mutation: commit + warm claim on node 1.
        cluster
            .node_mut(NodeId(1))
            .return_slot(FnId(2), t0, keep, false);
        assert!(cluster.node_mut(NodeId(1)).commit(Resources::new(4, 2)));
        state.touch(NodeId(1));
        let t1 = SimTime::from_ms(10.0);
        state.refresh(&cluster, t1);
        assert_eq!(
            state.nodes(),
            ClusterState::from_cluster(&cluster, t1).nodes()
        );
        assert_eq!(state.node(NodeId(1)).free, Resources::new(12, 5));
        assert!(state.node(NodeId(1)).has_warm(FnId(2)));

        // Passive change: the warm slot expires with no platform mutation.
        let late = t0 + keep + SimTime::from_ms(1.0);
        state.refresh(&cluster, late);
        assert!(!state.node(NodeId(1)).has_warm(FnId(2)));
        assert_eq!(
            state.nodes(),
            ClusterState::from_cluster(&cluster, late).nodes()
        );

        // Passive change the other way: a pre-warm becoming ready.
        cluster
            .node_mut(NodeId(0))
            .prewarm(FnId(4), late + SimTime::from_ms(50.0), keep);
        state.touch(NodeId(0));
        state.refresh(&cluster, late);
        assert!(!state.node(NodeId(0)).has_warm(FnId(4)));
        let ready = late + SimTime::from_ms(50.0);
        state.refresh(&cluster, ready);
        assert!(state.node(NodeId(0)).has_warm(FnId(4)));
        assert_eq!(
            state.nodes(),
            ClusterState::from_cluster(&cluster, ready).nodes()
        );

        // Churn: drain node 2, join a T4.
        cluster.node_mut(NodeId(2)).drain(ready);
        state.touch(NodeId(2));
        let joined = cluster.join(NodeClass::t4(), ready);
        state.note_join(cluster.node(joined), ready);
        state.refresh(&cluster, ready);
        assert_eq!(
            state.nodes(),
            ClusterState::from_cluster(&cluster, ready).nodes()
        );
        assert!(!state.node(NodeId(2)).online);
        assert_eq!(state.node(NodeId(2)).free, Resources::ZERO);
        assert_eq!(state.len(), 4);
    }

    #[test]
    fn steady_state_refresh_reuses_warm_buffers() {
        let keep = SimTime::from_secs(600.0);
        let mut cluster = Cluster::new(2, Resources::new(16, 7));
        let t0 = SimTime::ZERO;
        for f in 0..6u32 {
            cluster
                .node_mut(NodeId(0))
                .return_slot(FnId(f), t0, keep, false);
        }
        let mut state = ClusterState::from_cluster(&cluster, t0);
        let ptr_before = state.node(NodeId(0)).warm.as_ptr();
        let cap_before = state.node(NodeId(0)).warm.capacity();
        // Dispatch-shaped churn on the same node: touch + refresh many
        // times; the warm buffer must be rebuilt in place.
        for step in 1..200u64 {
            state.touch(NodeId(0));
            state.refresh(&cluster, SimTime::from_ms(step as f64));
        }
        assert_eq!(state.node(NodeId(0)).warm.as_ptr(), ptr_before);
        assert_eq!(state.node(NodeId(0)).warm.capacity(), cap_before);
        assert_eq!(state.node(NodeId(0)).warm.len(), 6);
    }

    #[test]
    fn steady_state_refresh_early_outs_without_scanning() {
        let keep = SimTime::from_secs(600.0);
        let mut cluster = Cluster::new(4, Resources::new(16, 7));
        cluster
            .node_mut(NodeId(1))
            .return_slot(FnId(3), SimTime::ZERO, keep, false);
        let mut state = ClusterState::from_cluster(&cluster, SimTime::ZERO);
        // Nothing dirty, well before the lease expiry: provable no-op.
        assert!(!state.any_dirty);
        assert!(SimTime::from_ms(1.0) < state.earliest_passive);
        state.refresh(&cluster, SimTime::from_ms(1.0));
        // The early-out must never skip a due passive expiry: at the
        // expiry horizon the scan runs and drops the warm slot.
        assert!(state.node(NodeId(1)).has_warm(FnId(3)));
        let late = SimTime::ZERO + keep + SimTime::from_ms(1.0);
        assert!(late >= state.earliest_passive);
        state.refresh(&cluster, late);
        assert!(!state.node(NodeId(1)).has_warm(FnId(3)));
        assert_eq!(
            state.nodes(),
            ClusterState::from_cluster(&cluster, late).nodes()
        );
        // ...and a touch always defeats the early-out.
        assert!(cluster.node_mut(NodeId(2)).commit(Resources::new(4, 2)));
        state.touch(NodeId(2));
        state.refresh(&cluster, late);
        assert_eq!(state.node(NodeId(2)).free, Resources::new(12, 5));
    }

    #[test]
    fn try_commit_validates_and_stamps() {
        let n0 = NodeView::idle(NodeId(0), Resources::new(16, 7));
        let mut state = ClusterState::from_views(vec![n0]);
        let g0 = state.generation();
        assert!(!state.moved_since(g0));
        assert!(state.try_commit(NodeId(0), Resources::new(10, 4)));
        assert_eq!(state.node(NodeId(0)).free, Resources::new(6, 3));
        assert!(state.moved_since(g0), "a commit moves the generation");
        // No longer fits: the commit fails and leaves everything alone.
        let g1 = state.generation();
        assert!(!state.try_commit(NodeId(0), Resources::new(10, 4)));
        assert_eq!(state.node(NodeId(0)).free, Resources::new(6, 3));
        assert!(!state.moved_since(g1));
        // Offline and out-of-range nodes never accept.
        state.node_mut(NodeId(0)).online = false;
        assert!(!state.try_commit(NodeId(0), Resources::new(1, 1)));
        assert!(!state.try_commit(NodeId(9), Resources::new(1, 1)));
    }

    #[test]
    fn generation_stamps_observable_changes() {
        let cluster = Cluster::new(2, Resources::new(16, 7));
        let mut state = ClusterState::from_cluster(&cluster, SimTime::ZERO);
        let g0 = state.generation();
        // A clean refresh is a no-op: no generation movement.
        state.refresh(&cluster, SimTime::from_ms(1.0));
        assert_eq!(state.generation(), g0);
        state.touch(NodeId(0));
        assert!(state.generation() > g0);
        let g1 = state.generation();
        state.refresh(&cluster, SimTime::from_ms(2.0));
        assert!(state.generation() > g1, "re-sync stamps the state");
    }
}
