//! The discrete-event queue.
//!
//! Events are ordered by `(time, class, sequence)`. The *class* encodes
//! the deterministic priority the historical preloaded-heap design gave
//! each event source at equal timestamps — workload arrivals (by
//! arrival index) before scripted churn (by plan index) before
//! dynamically scheduled events (by insertion order). Deriving the
//! tie-break from the event itself, rather than from global insertion
//! order, is what lets the platform push arrivals one at a time from a
//! lazy [`ArrivalStream`](esg_workload::ArrivalStream) and still
//! replay the materialised runs bit for bit.
//!
//! Two interchangeable backends implement the contract: a binary heap
//! (O(log n), the default) and the hierarchical
//! [`TimerWheel`] (O(1) amortised), selected
//! via [`EventQueueKind`].

use crate::wheel::TimerWheel;
use esg_model::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A simulation event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Event {
    /// An application invocation arrives (index into the workload).
    Arrival(usize),
    /// The controller performs its next scheduling step.
    ControllerStep,
    /// A task finished its pre-execution phase (cold start + input
    /// transfer) and wants to attach resources and run (task id).
    ExecReady(u64),
    /// A data-plane transfer's planned finish fires (task id, plan
    /// generation). Stale generations — the flow was re-planned after
    /// this event was scheduled — are skipped on pop; a current one
    /// completes the transfer and runs the task's exec-ready path.
    TransferDue(u64, u64),
    /// A running task completes (task id).
    TaskComplete(u64),
    /// A pre-warm timer fires for `(node, function)`.
    Prewarm(u32, u32),
    /// A scripted cluster-membership change fires (index into the run's
    /// `ChurnPlan`).
    Churn(usize),
}

/// Which backing store an [`EventQueue`] uses. Both deliver identical
/// event orderings (pinned by `tests/replay_equivalence.rs`); they
/// differ only in asymptotics and cache behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EventQueueKind {
    /// Binary min-heap: O(log n) push/pop, the classic default.
    #[default]
    Heap,
    /// Hierarchical timer wheel: O(1) amortised schedule/advance with a
    /// far-future overflow level, built for million-event replays.
    Wheel,
}

/// A time-ordered event queue with deterministic tie-breaking.
#[derive(Debug)]
pub struct EventQueue {
    backend: Backend,
    next_seq: u64,
    len: usize,
    peak_len: usize,
}

/// A heap entry: `(due time, (class rank, sequence), event)`, wrapped in
/// [`Reverse`] so the `BinaryHeap` pops the earliest rank first.
type HeapEntry = Reverse<(SimTime, (u8, u64), Event)>;

#[derive(Debug)]
enum Backend {
    Heap(BinaryHeap<HeapEntry>),
    Wheel(TimerWheel),
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl EventQueue {
    /// Creates an empty heap-backed queue.
    pub fn new() -> Self {
        EventQueue::with_kind(EventQueueKind::Heap)
    }

    /// Creates an empty queue on the chosen backend.
    pub fn with_kind(kind: EventQueueKind) -> Self {
        let backend = match kind {
            EventQueueKind::Heap => Backend::Heap(BinaryHeap::new()),
            EventQueueKind::Wheel => Backend::Wheel(TimerWheel::new()),
        };
        EventQueue {
            backend,
            next_seq: 0,
            len: 0,
            peak_len: 0,
        }
    }

    /// The backend this queue runs on.
    pub fn kind(&self) -> EventQueueKind {
        match self.backend {
            Backend::Heap(_) => EventQueueKind::Heap,
            Backend::Wheel(_) => EventQueueKind::Wheel,
        }
    }

    /// The deterministic tie-break rank of `event` at equal timestamps:
    /// arrivals by index, churn by plan index, everything else in
    /// insertion order.
    fn rank(&mut self, event: &Event) -> (u8, u64) {
        match *event {
            Event::Arrival(i) => (0, i as u64),
            Event::Churn(i) => (1, i as u64),
            _ => {
                let s = self.next_seq;
                self.next_seq += 1;
                (2, s)
            }
        }
    }

    /// Schedules `event` at `at`. The wheel backend requires `at` to be
    /// no earlier than the last popped time (the simulation loop only
    /// ever schedules at or after *now*).
    pub fn push(&mut self, at: SimTime, event: Event) {
        let rank = self.rank(&event);
        match &mut self.backend {
            Backend::Heap(h) => h.push(Reverse((at, rank, event))),
            Backend::Wheel(w) => w.insert(at.0, rank, event),
        }
        self.len += 1;
        self.peak_len = self.peak_len.max(self.len);
    }

    /// Pops the earliest event, ties broken by `(class, sequence)`.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        let popped = match &mut self.backend {
            Backend::Heap(h) => h.pop().map(|Reverse((at, _, ev))| (at, ev)),
            Backend::Wheel(w) => w.pop(),
        };
        if popped.is_some() {
            self.len -= 1;
        }
        popped
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// High-water mark of pending events over the queue's lifetime.
    #[inline]
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The time of the earliest pending event (`&mut` because the wheel
    /// advances its cursor lazily).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.backend {
            Backend::Heap(h) => h.peek().map(|Reverse((t, _, _))| *t),
            Backend::Wheel(w) => w.peek_time(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_kinds() -> [EventQueue; 2] {
        [
            EventQueue::with_kind(EventQueueKind::Heap),
            EventQueue::with_kind(EventQueueKind::Wheel),
        ]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in both_kinds() {
            q.push(SimTime::from_ms(5.0), Event::ControllerStep);
            q.push(SimTime::from_ms(1.0), Event::Arrival(0));
            q.push(SimTime::from_ms(3.0), Event::TaskComplete(7));
            assert_eq!(q.len(), 3);
            assert_eq!(q.peek_time(), Some(SimTime::from_ms(1.0)));
            let order: Vec<Event> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(
                order,
                vec![
                    Event::Arrival(0),
                    Event::TaskComplete(7),
                    Event::ControllerStep
                ]
            );
            assert!(q.is_empty());
            assert_eq!(q.peak_len(), 3);
        }
    }

    #[test]
    fn ties_break_by_class_then_index() {
        // At equal times: arrivals pop by arrival index (the order the
        // historical preloaded heap gave them), churn next, dynamic
        // events last in insertion order — regardless of push order.
        for mut q in both_kinds() {
            let t = SimTime::from_ms(2.0);
            q.push(t, Event::ControllerStep);
            q.push(t, Event::Arrival(3));
            q.push(t, Event::Churn(0));
            q.push(t, Event::Arrival(1));
            q.push(t, Event::Arrival(2));
            q.push(t, Event::Prewarm(9, 9));
            let order: Vec<Event> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(
                order,
                vec![
                    Event::Arrival(1),
                    Event::Arrival(2),
                    Event::Arrival(3),
                    Event::Churn(0),
                    Event::ControllerStep,
                    Event::Prewarm(9, 9),
                ]
            );
        }
    }

    #[test]
    fn empty_queue() {
        for mut q in both_kinds() {
            assert_eq!(q.pop(), None);
            assert_eq!(q.peek_time(), None);
        }
    }

    #[test]
    fn interleaved_push_pop() {
        for mut q in both_kinds() {
            q.push(SimTime::from_ms(10.0), Event::ControllerStep);
            q.push(SimTime::from_ms(1.0), Event::Arrival(0));
            assert_eq!(q.pop().map(|(_, e)| e), Some(Event::Arrival(0)));
            q.push(SimTime::from_ms(4.0), Event::Prewarm(1, 2));
            assert_eq!(q.pop().map(|(_, e)| e), Some(Event::Prewarm(1, 2)));
            assert_eq!(q.pop().map(|(_, e)| e), Some(Event::ControllerStep));
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn backends_agree_on_a_random_schedule() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut plan: Vec<(u64, Event)> = Vec::new();
        for i in 0..5_000u64 {
            let at = rng.random_range(0..5_000_000u64);
            let ev = match i % 4 {
                0 => Event::ExecReady(i),
                1 => Event::TaskComplete(i),
                2 => Event::Prewarm(i as u32, 0),
                _ => Event::ControllerStep,
            };
            plan.push((at, ev));
        }
        let run = |kind: EventQueueKind| {
            let mut q = EventQueue::with_kind(kind);
            let mut out = Vec::new();
            // Interleave: push in batches, pop a few, repeat — pops only
            // ever push-after-pop at times >= the popped time, so feed
            // the wheel sorted batches.
            let mut sorted = plan.clone();
            sorted.sort_by_key(|&(t, _)| t);
            let mut fed = 0usize;
            while fed < sorted.len() || out.len() < sorted.len() {
                let batch = (sorted.len() - fed).min(37);
                for &(t, ev) in &sorted[fed..fed + batch] {
                    q.push(SimTime::from_us(t), ev);
                }
                fed += batch;
                for _ in 0..11 {
                    if let Some(x) = q.pop() {
                        out.push(x);
                    }
                }
            }
            while let Some(x) = q.pop() {
                out.push(x);
            }
            out
        };
        assert_eq!(run(EventQueueKind::Heap), run(EventQueueKind::Wheel));
    }
}
