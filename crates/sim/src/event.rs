//! The discrete-event queue.
//!
//! Events are ordered by `(time, sequence)`: the sequence number breaks
//! ties in insertion order, which makes runs bit-reproducible regardless of
//! heap internals.

use esg_model::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A simulation event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Event {
    /// An application invocation arrives (index into the workload).
    Arrival(usize),
    /// The controller performs its next scheduling step.
    ControllerStep,
    /// A task finished its pre-execution phase (cold start + input
    /// transfer) and wants to attach resources and run (task id).
    ExecReady(u64),
    /// A running task completes (task id).
    TaskComplete(u64),
    /// A pre-warm timer fires for `(node, function)`.
    Prewarm(u32, u32),
    /// A scripted cluster-membership change fires (index into the run's
    /// `ChurnPlan`).
    Churn(usize),
}

/// A time-ordered event queue with deterministic tie-breaking.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(SimTime, u64, Event)>>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at `at`.
    pub fn push(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq, event)));
    }

    /// Pops the earliest event, ties broken by insertion order.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|Reverse((at, _, ev))| (at, ev))
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ms(5.0), Event::ControllerStep);
        q.push(SimTime::from_ms(1.0), Event::Arrival(0));
        q.push(SimTime::from_ms(3.0), Event::TaskComplete(7));
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(1.0)));
        let order: Vec<Event> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(
            order,
            vec![
                Event::Arrival(0),
                Event::TaskComplete(7),
                Event::ControllerStep
            ]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ms(2.0);
        q.push(t, Event::Arrival(3));
        q.push(t, Event::Arrival(1));
        q.push(t, Event::Arrival(2));
        let order: Vec<Event> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(
            order,
            vec![Event::Arrival(3), Event::Arrival(1), Event::Arrival(2)]
        );
    }

    #[test]
    fn empty_queue() {
        let mut q = EventQueue::new();
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ms(10.0), Event::ControllerStep);
        q.push(SimTime::from_ms(1.0), Event::Arrival(0));
        assert_eq!(q.pop().map(|(_, e)| e), Some(Event::Arrival(0)));
        q.push(SimTime::from_ms(4.0), Event::Prewarm(1, 2));
        assert_eq!(q.pop().map(|(_, e)| e), Some(Event::Prewarm(1, 2)));
        assert_eq!(q.pop().map(|(_, e)| e), Some(Event::ControllerStep));
        assert!(q.pop().is_none());
    }
}
