//! The static-pinning tier's data model: server topology maps, pin
//! plans, and the knobs/counters the platform validates and reports.
//!
//! The paper's ESG searches per queue at dispatch time (§3). Production
//! schedulers with the same shareable-GPU substrate (GSwarm, HAS-GPU)
//! add a *static tier* in front of that search: a pattern-analysis pass
//! pins the popularity head — whole hot workflows — onto specific
//! servers, so their dispatches skip the search entirely and complete
//! intra-server, while the cold tail still flows through the full
//! dynamic search. This module holds the shared vocabulary:
//!
//! * [`ServerMap`] — the node→server assignment derived from
//!   `esg_model::ServerTopology`, kept live across churn (joined nodes
//!   start unassigned);
//! * [`Pin`] / [`PinPlan`] — the analysis output: per queue `(app,
//!   stage)`, the function, the fixed configuration, and the pinned
//!   node (with its server, for locality accounting). A queue may hold
//!   several *replicas* — same config, distinct nodes of the same
//!   server — when one slice cannot sustain the app's arrival rate;
//! * [`PinningConfig`] — the planner knobs, validated by
//!   [`SimBuilder`](crate::SimBuilder);
//! * [`PinnedStats`] — hit/miss/re-pin counters surfaced through
//!   [`SchedulerStats`](crate::SchedulerStats) and the health
//!   dashboard.
//!
//! The planner itself (`PinPlanner`) and the hybrid scheduler that
//! consumes the plan live in `esg-core`; this crate only defines the
//! types so the platform, tests and benches can talk about plans
//! without depending on the algorithm.

use crate::sched::QueueKey;
use esg_model::{ClusterSpec, Config, FnId, NodeId};

/// The live node→server assignment. Built from a cluster's
/// [`ServerTopology`](esg_model::ServerTopology); nodes that join after
/// the map was built are *unassigned* (no server) until re-planned —
/// they still serve the dynamic tier, but the pinning tier won't count
/// them as intra-server for any existing pin.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerMap {
    /// `assignment[node] = Some(server)`, `None` for joined/unassigned
    /// nodes.
    assignment: Vec<Option<usize>>,
    num_servers: usize,
}

impl ServerMap {
    /// The map of `spec`'s topology, or `None` when the cluster is flat
    /// (no [`ServerTopology`](esg_model::ServerTopology) declared).
    pub fn from_spec(spec: &ClusterSpec) -> Option<ServerMap> {
        spec.topology
            .map(|t| ServerMap::from_topology(&t, spec.nodes.len()))
    }

    /// The map of `topology` over `nodes` consecutive nodes.
    pub fn from_topology(topology: &esg_model::ServerTopology, nodes: usize) -> ServerMap {
        ServerMap {
            assignment: (0..nodes).map(|n| Some(topology.server_of(n))).collect(),
            num_servers: topology.num_servers(nodes),
        }
    }

    /// The server hosting `node`, or `None` for unassigned joiners.
    pub fn server_of(&self, node: NodeId) -> Option<usize> {
        self.assignment.get(node.0 as usize).copied().flatten()
    }

    /// Whether `a` and `b` sit in the same server (false when either is
    /// unassigned).
    pub fn same_server(&self, a: NodeId, b: NodeId) -> bool {
        match (self.server_of(a), self.server_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Number of servers the topology declared (unassigned joiners do
    /// not add servers).
    pub fn num_servers(&self) -> usize {
        self.num_servers
    }

    /// Number of nodes tracked (including unassigned joiners).
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Whether the map tracks no nodes.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// The nodes assigned to `server`, ascending.
    pub fn nodes_of(&self, server: usize) -> impl Iterator<Item = NodeId> + '_ {
        self.assignment
            .iter()
            .enumerate()
            .filter(move |(_, s)| **s == Some(server))
            .map(|(n, _)| NodeId(n as u32))
    }

    /// Records a churn join: the new node exists but belongs to no
    /// server until the next planning pass.
    pub fn note_join(&mut self) {
        self.assignment.push(None);
    }
}

/// One static pin *replica*: queue `key`'s dispatches may go to `node`
/// as `config`, no search. A queue can hold several replicas — all on
/// the same server — when a single slice cannot sustain the app's
/// arrival rate; the router uses whichever replica is free.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pin {
    /// The pinned queue `(app, stage)`.
    pub key: QueueKey,
    /// The function the stage runs (for warm-pool accounting).
    pub function: FnId,
    /// The fixed dispatch configuration.
    pub config: Config,
    /// The pinned node.
    pub node: NodeId,
    /// The node's server at planning time (locality bookkeeping).
    pub server: Option<usize>,
}

/// The static tier's output: the set of pins the hybrid scheduler
/// routes by. Empty plans are the contract's identity: a hybrid
/// scheduler holding an empty plan must behave bit-identically to its
/// inner dynamic scheduler.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PinPlan {
    pins: Vec<Pin>,
}

impl PinPlan {
    /// The empty plan (the dynamic-only identity).
    pub fn empty() -> PinPlan {
        PinPlan::default()
    }

    /// Adds `pin`, replacing any existing pin of the same queue *and*
    /// node. A second push for the same queue on a different node adds
    /// a replica.
    pub fn push(&mut self, pin: Pin) {
        match self
            .pins
            .iter_mut()
            .find(|p| p.key == pin.key && p.node == pin.node)
        {
            Some(p) => *p = pin,
            None => self.pins.push(pin),
        }
    }

    /// The first pin of `key`, if any. Plans are small (popularity head
    /// × stages × replicas), so a linear scan beats a map here.
    pub fn get(&self, key: QueueKey) -> Option<&Pin> {
        self.pins.iter().find(|p| p.key == key)
    }

    /// All replicas of `key`, in insertion order.
    pub fn replicas(&self, key: QueueKey) -> impl Iterator<Item = &Pin> {
        self.pins.iter().filter(move |p| p.key == key)
    }

    /// All pins, in insertion order.
    pub fn pins(&self) -> &[Pin] {
        &self.pins
    }

    /// Whether the plan pins nothing.
    pub fn is_empty(&self) -> bool {
        self.pins.is_empty()
    }

    /// Number of pins.
    pub fn len(&self) -> usize {
        self.pins.len()
    }

    /// Moves `key`'s first pin to `node` on `server` (churn re-pin).
    /// Returns `false` when `key` isn't pinned.
    pub fn set_node(&mut self, key: QueueKey, node: NodeId, server: Option<usize>) -> bool {
        match self.pins.iter_mut().find(|p| p.key == key) {
            Some(p) => {
                p.node = node;
                p.server = server;
                true
            }
            None => false,
        }
    }

    /// Moves the replica of `key` pinned on `from` to `to` on `server`
    /// (churn re-pin of one replica). Returns `false` when no such
    /// replica exists.
    pub fn set_replica_node(
        &mut self,
        key: QueueKey,
        from: NodeId,
        to: NodeId,
        server: Option<usize>,
    ) -> bool {
        match self
            .pins
            .iter_mut()
            .find(|p| p.key == key && p.node == from)
        {
            Some(p) => {
                p.node = to;
                p.server = server;
                true
            }
            None => false,
        }
    }

    /// Drops the replica of `key` pinned on `node` (its node is gone and
    /// no sibling can take it). Returns `false` when no such replica
    /// exists.
    pub fn drop_replica(&mut self, key: QueueKey, node: NodeId) -> bool {
        let before = self.pins.len();
        self.pins.retain(|p| p.key != key || p.node != node);
        self.pins.len() != before
    }

    /// Drops every replica of `key` (demote to the dynamic tier).
    /// Returns `false` when `key` wasn't pinned.
    pub fn demote(&mut self, key: QueueKey) -> bool {
        let before = self.pins.len();
        self.pins.retain(|p| p.key != key);
        self.pins.len() != before
    }

    /// Total vGPU slices the plan reserves (one slice set per pin) —
    /// what [`SimBuilder`](crate::SimBuilder) checks against the
    /// pinning budget and cluster capacity.
    pub fn total_vgpus(&self) -> u64 {
        self.pins.iter().map(|p| p.config.vgpus as u64).sum()
    }
}

/// Planner knobs for the static tier, validated by
/// [`SimBuilder`](crate::SimBuilder) before a run starts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PinningConfig {
    /// Upper bound on the vGPU slices a plan may reserve across all
    /// pins. Must not exceed the cluster's total vGPU capacity.
    pub budget_vgpus: u64,
    /// Pin only apps whose observed invocation share is at least this
    /// multiple of the uniform share (`factor / num_apps`). Values > 1
    /// keep the tier inert on uniform traffic.
    pub min_share_factor: f64,
    /// At most this many applications are pinned (hottest first).
    pub max_pinned_apps: usize,
}

impl Default for PinningConfig {
    fn default() -> PinningConfig {
        PinningConfig {
            budget_vgpus: 16,
            min_share_factor: 1.5,
            max_pinned_apps: 2,
        }
    }
}

/// Static-tier counters, reported through
/// [`SchedulerStats`](crate::SchedulerStats) (Debug-gated: all-zero
/// stats print nothing, keeping dynamic-only digests unchanged).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PinnedStats {
    /// Dispatch decisions answered by the pinned tier (zero search).
    pub hits: u64,
    /// Pinned queues that fell back to the dynamic search (pin demoted
    /// or its node unusable).
    pub misses: u64,
    /// Pins moved to a sibling node after churn drained their server.
    pub repins: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use esg_model::AppId;

    fn key(app: u32, stage: usize) -> QueueKey {
        QueueKey {
            app: AppId(app),
            stage,
        }
    }

    fn pin(app: u32, stage: usize, node: u32) -> Pin {
        Pin {
            key: key(app, stage),
            function: FnId(app * 10 + stage as u32),
            config: Config::new(2, 2, 1),
            node: NodeId(node),
            server: Some(node as usize / 4),
        }
    }

    #[test]
    fn server_map_tracks_topology_and_joins() {
        let spec = ClusterSpec::paper().with_topology(4, 10.0);
        let mut map = ServerMap::from_spec(&spec).unwrap();
        assert_eq!(map.len(), 16);
        assert_eq!(map.num_servers(), 4);
        assert_eq!(map.server_of(NodeId(0)), Some(0));
        assert_eq!(map.server_of(NodeId(7)), Some(1));
        assert!(map.same_server(NodeId(4), NodeId(7)));
        assert!(!map.same_server(NodeId(3), NodeId(4)));
        assert_eq!(
            map.nodes_of(1).collect::<Vec<_>>(),
            vec![NodeId(4), NodeId(5), NodeId(6), NodeId(7)]
        );
        // A churn join is visible but unassigned: never intra-server.
        map.note_join();
        assert_eq!(map.len(), 17);
        assert_eq!(map.server_of(NodeId(16)), None);
        assert!(!map.same_server(NodeId(16), NodeId(16)));
        assert_eq!(map.num_servers(), 4);
        // Flat clusters have no map.
        assert!(ServerMap::from_spec(&ClusterSpec::paper()).is_none());
    }

    #[test]
    fn plan_upserts_repins_and_demotes() {
        let mut plan = PinPlan::empty();
        assert!(plan.is_empty());
        plan.push(pin(0, 0, 0));
        plan.push(pin(0, 1, 1));
        plan.push(pin(1, 0, 4));
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.total_vgpus(), 3);
        assert_eq!(plan.get(key(0, 1)).unwrap().node, NodeId(1));
        // Same queue, same node: upsert replaces in place.
        let mut replacement = pin(0, 1, 1);
        replacement.config = Config::new(4, 4, 2);
        plan.push(replacement);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.get(key(0, 1)).unwrap().config, Config::new(4, 4, 2));
        assert_eq!(plan.total_vgpus(), 4);
        // Re-pin moves the node; demote removes the pin.
        assert!(plan.set_node(key(1, 0), NodeId(5), Some(1)));
        assert_eq!(plan.get(key(1, 0)).unwrap().node, NodeId(5));
        assert!(!plan.set_node(key(9, 0), NodeId(0), None));
        assert!(plan.demote(key(0, 0)));
        assert!(!plan.demote(key(0, 0)));
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn replicas_share_a_queue_and_demote_together() {
        let mut plan = PinPlan::empty();
        // Same queue, distinct nodes: replicas accumulate.
        plan.push(pin(0, 0, 0));
        plan.push(pin(0, 0, 1));
        plan.push(pin(0, 0, 2));
        plan.push(pin(0, 1, 3));
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.replicas(key(0, 0)).count(), 3);
        assert_eq!(plan.total_vgpus(), 4);
        // One replica moves; the others stay put.
        assert!(plan.set_replica_node(key(0, 0), NodeId(1), NodeId(3), Some(0)));
        assert!(!plan.set_replica_node(key(0, 0), NodeId(9), NodeId(3), Some(0)));
        let nodes: Vec<NodeId> = plan.replicas(key(0, 0)).map(|p| p.node).collect();
        assert_eq!(nodes, vec![NodeId(0), NodeId(3), NodeId(2)]);
        // One replica drops; the queue stays pinned.
        assert!(plan.drop_replica(key(0, 0), NodeId(2)));
        assert!(!plan.drop_replica(key(0, 0), NodeId(2)));
        assert_eq!(plan.replicas(key(0, 0)).count(), 2);
        // Demote removes every replica of the queue, nothing else.
        assert!(plan.demote(key(0, 0)));
        assert_eq!(plan.replicas(key(0, 0)).count(), 0);
        assert_eq!(plan.len(), 1);
        assert!(plan.get(key(0, 1)).is_some());
    }
}
