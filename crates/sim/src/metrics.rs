//! Experiment metrics.
//!
//! One [`ExperimentResult`] per simulation run carries everything the §5
//! figures need: per-application SLO hits, latency series (Fig. 7/8),
//! costs, scheduling-overhead samples (Fig. 10), configuration-miss counts
//! (Table 4), start/transfer counters, and utilisation (Fig. 12).

use crate::dataplane::TransferSummary;
use crate::sched::SchedulerStats;
use esg_model::{AppId, BoxStats, Resources, Summary};

/// End-of-run summary of one cluster node (heterogeneity/churn audit
/// trail: the capacity property tests assert `peak_used ≤ total` here).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeSummary {
    /// Node-class name ("a100", "t4", "custom-16c/7g", …).
    pub class: String,
    /// Total capacity of the node.
    pub total: Resources,
    /// Peak simultaneous resource attachment observed.
    pub peak_used: Resources,
    /// Whether the node was still accepting placements at run end
    /// (false = drained).
    pub online: bool,
}

/// Per-application accumulators.
#[derive(Clone, Debug, Default)]
pub struct AppMetrics {
    /// Application name (for reports).
    pub name: String,
    /// Completed invocations.
    pub completed: u64,
    /// Invocations finishing within their SLO.
    pub slo_hits: u64,
    /// End-to-end latency of every completed invocation, ms, in completion
    /// order (Fig. 7 plots these series).
    pub latencies_ms: Vec<f64>,
    /// Deadline (SLO) in ms used for this app.
    pub slo_ms: f64,
    /// Accumulated resource cost, cents.
    pub cost_cents: f64,
}

impl AppMetrics {
    /// SLO hit rate in [0, 1]; 0 when nothing completed.
    pub fn hit_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.slo_hits as f64 / self.completed as f64
        }
    }

    /// Mean end-to-end latency, ms.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.latencies_ms.is_empty() {
            0.0
        } else {
            self.latencies_ms.iter().sum::<f64>() / self.latencies_ms.len() as f64
        }
    }

    /// Latency percentile, ms.
    pub fn latency_percentile(&self, p: f64) -> Option<f64> {
        esg_model::percentile(&self.latencies_ms, p)
    }
}

/// The result of one simulation run.
#[derive(Clone, Default)]
pub struct ExperimentResult {
    /// Scheduler name.
    pub scheduler: String,
    /// Scenario label (e.g. "strict-light").
    pub scenario: String,
    /// Per-app metrics, indexed by `AppId`.
    pub apps: Vec<AppMetrics>,
    /// Simulated scheduling overhead per decision, ms (Fig. 10).
    pub overhead_ms: Vec<f64>,
    /// Real wall-clock overhead per decision, ms (honesty track).
    pub wall_overhead_ms: Vec<f64>,
    /// Dispatches whose planned batch exceeded the queue length (Table 4).
    pub config_misses: u64,
    /// Total dispatched tasks.
    pub dispatches: u64,
    /// Tasks that started on a warm container.
    pub warm_starts: u64,
    /// Tasks that paid a cold start.
    pub cold_starts: u64,
    /// Per-job input hand-offs served locally.
    pub local_transfers: u64,
    /// Per-job input hand-offs served remotely.
    pub remote_transfers: u64,
    /// Queue→recheck-list transitions.
    pub rechecks: u64,
    /// Forced minimum-configuration dispatches (recheck overflow).
    pub forced_min_dispatches: u64,
    /// Mean cluster vCPU utilisation in [0, 1].
    pub vcpu_utilisation: f64,
    /// Mean cluster vGPU utilisation in [0, 1].
    pub vgpu_utilisation: f64,
    /// Per-task wait of the oldest batched job, ms.
    pub batch_wait_ms: Summary,
    /// Distribution of dispatched batch sizes.
    pub batch_size: Summary,
    /// Invocations that arrived (for completeness accounting).
    pub arrivals: u64,
    /// Simulated makespan, ms.
    pub makespan_ms: f64,
    /// Per-job time from queue entry to dispatch, ms.
    pub phase_queue_wait_ms: Summary,
    /// Per-task init phase (cold start + transfer), ms.
    pub phase_init_ms: Summary,
    /// Per-task wait for node capacity after init, ms.
    pub phase_exec_queue_ms: Summary,
    /// Per-task execution, ms.
    pub phase_exec_ms: Summary,
    /// Per-node end-of-run summaries, in `NodeId` order (includes nodes
    /// drained or joined by churn).
    pub nodes: Vec<NodeSummary>,
    /// Scheduler-reported counters (searches run, plan-cache hit/miss/
    /// eviction/invalidation totals). Deterministic — cache hits replay
    /// memoised expansion counts, so these are a pure function of the run.
    pub scheduler_stats: SchedulerStats,
    /// Invocations killed by admission shedding (`QueueShed` events).
    pub shed_invocations: u64,
    /// Jobs dropped by admission shedding, including sibling-stage jobs
    /// purged from other queues when their invocation was killed.
    pub shed_jobs: u64,
    /// Data-plane transfer counters (all-default when the run used the
    /// classic scalar transfer model).
    pub transfers: TransferSummary,
}

/// Hand-rolled `Debug` matching the pre-policy derive output
/// byte-for-byte whenever no shedding occurred: the golden control-plane
/// digests hash this dump, and the classic policy stack (which never
/// sheds) must stay bit-identical to the pinned baseline.
impl std::fmt::Debug for ExperimentResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("ExperimentResult");
        d.field("scheduler", &self.scheduler)
            .field("scenario", &self.scenario)
            .field("apps", &self.apps)
            .field("overhead_ms", &self.overhead_ms)
            .field("wall_overhead_ms", &self.wall_overhead_ms)
            .field("config_misses", &self.config_misses)
            .field("dispatches", &self.dispatches)
            .field("warm_starts", &self.warm_starts)
            .field("cold_starts", &self.cold_starts)
            .field("local_transfers", &self.local_transfers)
            .field("remote_transfers", &self.remote_transfers)
            .field("rechecks", &self.rechecks)
            .field("forced_min_dispatches", &self.forced_min_dispatches)
            .field("vcpu_utilisation", &self.vcpu_utilisation)
            .field("vgpu_utilisation", &self.vgpu_utilisation)
            .field("batch_wait_ms", &self.batch_wait_ms)
            .field("batch_size", &self.batch_size)
            .field("arrivals", &self.arrivals)
            .field("makespan_ms", &self.makespan_ms)
            .field("phase_queue_wait_ms", &self.phase_queue_wait_ms)
            .field("phase_init_ms", &self.phase_init_ms)
            .field("phase_exec_queue_ms", &self.phase_exec_queue_ms)
            .field("phase_exec_ms", &self.phase_exec_ms)
            .field("nodes", &self.nodes)
            .field("scheduler_stats", &self.scheduler_stats);
        if self.shed_invocations != 0 || self.shed_jobs != 0 {
            d.field("shed_invocations", &self.shed_invocations)
                .field("shed_jobs", &self.shed_jobs);
        }
        if self.transfers != TransferSummary::default() {
            d.field("transfers", &self.transfers);
        }
        d.finish()
    }
}

impl ExperimentResult {
    /// Average of per-app SLO hit rates (Fig. 6's headline metric).
    pub fn avg_hit_rate(&self) -> f64 {
        let active: Vec<&AppMetrics> = self.apps.iter().filter(|a| a.completed > 0).collect();
        if active.is_empty() {
            return 0.0;
        }
        active.iter().map(|a| a.hit_rate()).sum::<f64>() / active.len() as f64
    }

    /// Overall job-level hit rate (hits / completions across apps).
    pub fn overall_hit_rate(&self) -> f64 {
        let (hits, total) = self
            .apps
            .iter()
            .fold((0u64, 0u64), |(h, t), a| (h + a.slo_hits, t + a.completed));
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Total cost across apps, cents.
    pub fn total_cost_cents(&self) -> f64 {
        self.apps.iter().map(|a| a.cost_cents).sum()
    }

    /// Total completed invocations.
    pub fn total_completed(&self) -> u64 {
        self.apps.iter().map(|a| a.completed).sum()
    }

    /// Cost per completed invocation, cents.
    pub fn cost_per_invocation_cents(&self) -> f64 {
        let n = self.total_completed();
        if n == 0 {
            0.0
        } else {
            self.total_cost_cents() / n as f64
        }
    }

    /// Configuration miss rate (Table 4): misses / dispatches.
    pub fn config_miss_rate(&self) -> f64 {
        if self.dispatches == 0 {
            0.0
        } else {
            self.config_misses as f64 / self.dispatches as f64
        }
    }

    /// Box statistics of the simulated scheduling overhead (Fig. 10).
    pub fn overhead_box(&self) -> Option<BoxStats> {
        BoxStats::from(&self.overhead_ms)
    }

    /// Mean simulated scheduling overhead, ms.
    pub fn mean_overhead_ms(&self) -> f64 {
        if self.overhead_ms.is_empty() {
            0.0
        } else {
            self.overhead_ms.iter().sum::<f64>() / self.overhead_ms.len() as f64
        }
    }

    /// Fraction of arrived invocations killed by admission shedding.
    pub fn shed_rate(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.shed_invocations as f64 / self.arrivals as f64
        }
    }

    /// Cold-start fraction of dispatches.
    pub fn cold_start_rate(&self) -> f64 {
        let starts = self.warm_starts + self.cold_starts;
        if starts == 0 {
            0.0
        } else {
            self.cold_starts as f64 / starts as f64
        }
    }

    /// Fraction of hand-offs served locally.
    pub fn locality_rate(&self) -> f64 {
        let t = self.local_transfers + self.remote_transfers;
        if t == 0 {
            0.0
        } else {
            self.local_transfers as f64 / t as f64
        }
    }

    /// Per-app metrics accessor.
    pub fn app(&self, id: AppId) -> &AppMetrics {
        &self.apps[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentResult {
        ExperimentResult {
            apps: vec![
                AppMetrics {
                    name: "a".into(),
                    completed: 10,
                    slo_hits: 8,
                    latencies_ms: vec![100.0; 10],
                    slo_ms: 120.0,
                    cost_cents: 5.0,
                },
                AppMetrics {
                    name: "b".into(),
                    completed: 10,
                    slo_hits: 4,
                    latencies_ms: vec![200.0; 10],
                    slo_ms: 150.0,
                    cost_cents: 15.0,
                },
            ],
            dispatches: 20,
            config_misses: 5,
            warm_starts: 15,
            cold_starts: 5,
            local_transfers: 30,
            remote_transfers: 10,
            ..ExperimentResult::default()
        }
    }

    #[test]
    fn rates() {
        let r = sample();
        assert!((r.avg_hit_rate() - 0.6).abs() < 1e-12);
        assert!((r.overall_hit_rate() - 0.6).abs() < 1e-12);
        assert!((r.total_cost_cents() - 20.0).abs() < 1e-12);
        assert!((r.config_miss_rate() - 0.25).abs() < 1e-12);
        assert!((r.cold_start_rate() - 0.25).abs() < 1e-12);
        assert!((r.locality_rate() - 0.75).abs() < 1e-12);
        assert!((r.cost_per_invocation_cents() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn avg_vs_overall_differ_when_unbalanced() {
        let mut r = sample();
        r.apps[0].completed = 100;
        r.apps[0].slo_hits = 100;
        // avg: (1.0 + 0.4)/2 = 0.7; overall: 104/110.
        assert!((r.avg_hit_rate() - 0.7).abs() < 1e-12);
        assert!((r.overall_hit_rate() - 104.0 / 110.0).abs() < 1e-12);
    }

    #[test]
    fn empty_result_is_all_zeroes() {
        let r = ExperimentResult::default();
        assert_eq!(r.avg_hit_rate(), 0.0);
        assert_eq!(r.total_cost_cents(), 0.0);
        assert_eq!(r.config_miss_rate(), 0.0);
        assert_eq!(r.overhead_box(), None);
        assert_eq!(r.mean_overhead_ms(), 0.0);
    }

    #[test]
    fn app_metrics_stats() {
        let a = AppMetrics {
            name: "x".into(),
            completed: 4,
            slo_hits: 2,
            latencies_ms: vec![10.0, 20.0, 30.0, 40.0],
            slo_ms: 25.0,
            cost_cents: 1.0,
        };
        assert!((a.hit_rate() - 0.5).abs() < 1e-12);
        assert!((a.mean_latency_ms() - 25.0).abs() < 1e-12);
        assert_eq!(a.latency_percentile(100.0), Some(40.0));
    }

    #[test]
    fn overhead_box_built_from_samples() {
        let r = ExperimentResult {
            overhead_ms: vec![1.0, 2.0, 3.0, 4.0, 5.0],
            ..ExperimentResult::default()
        };
        let b = r.overhead_box().expect("non-empty");
        assert_eq!(b.median, 3.0);
        assert!((r.mean_overhead_ms() - 3.0).abs() < 1e-12);
    }
}
