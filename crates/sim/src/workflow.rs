//! Workflow instances, jobs, and AFW queues.
//!
//! Each application invocation becomes a [`WorkflowInstance`] tracking one
//! job per DAG stage. A stage's job enters its app-function-wise (AFW)
//! queue (§3.1) once all predecessor stages complete; the controller drains
//! queues by dispatching batched tasks.

use esg_model::{AppId, AppSpec, InvocationId, NodeId, SimTime};
use std::collections::VecDeque;

/// One job: one request at one stage of one invocation (§3.2 task model).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Job {
    /// Owning invocation.
    pub invocation: InvocationId,
    /// The invocation's slot in the platform's arena. Slots are recycled,
    /// so any dereference must check the slot still holds `invocation`
    /// (a shed invocation's sibling jobs can outlive it).
    pub slot: u32,
    /// Stage index within the app DAG.
    pub stage: usize,
    /// When the job entered its AFW queue.
    pub ready_at: SimTime,
    /// Node that produced this job's input (`None` for entry stages, whose
    /// input arrives from the gateway / remote storage).
    pub pred_node: Option<NodeId>,
}

/// An app-function-wise job queue: requests for the same function of the
/// same application (§3.1).
#[derive(Clone, Debug, Default)]
pub struct AfwQueue {
    jobs: VecDeque<Job>,
}

impl AfwQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        AfwQueue::default()
    }

    /// Appends a job (jobs arrive in ready order).
    pub fn push(&mut self, job: Job) {
        self.jobs.push_back(job);
    }

    /// Removes and returns the first `n` jobs.
    pub fn take(&mut self, n: usize) -> Vec<Job> {
        let n = n.min(self.jobs.len());
        self.jobs.drain(..n).collect()
    }

    /// Removes and returns every queued job (admission shedding).
    pub fn take_all(&mut self) -> Vec<Job> {
        self.jobs.drain(..).collect()
    }

    /// Keeps only the jobs `f` accepts, preserving order (purging the
    /// sibling jobs of a shed invocation).
    pub fn retain(&mut self, f: impl FnMut(&Job) -> bool) {
        self.jobs.retain(f);
    }

    /// Jobs currently queued, oldest first.
    pub fn jobs(&self) -> impl Iterator<Item = &Job> {
        self.jobs.iter()
    }

    /// Queue length.
    #[inline]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The oldest job's ready time.
    pub fn oldest_ready_at(&self) -> Option<SimTime> {
        self.jobs.front().map(|j| j.ready_at)
    }
}

/// The runtime state of one application invocation.
#[derive(Clone, Debug)]
pub struct WorkflowInstance {
    /// Invocation id.
    pub id: InvocationId,
    /// The application.
    pub app: AppId,
    /// Arrival time.
    pub arrived_at: SimTime,
    /// End-to-end deadline (arrival + SLO).
    pub deadline: SimTime,
    /// Per-stage count of incomplete predecessors.
    remaining_preds: Vec<u8>,
    /// Per-stage completion flag.
    done: Vec<bool>,
    /// Node each completed stage ran on (placement memory for locality).
    stage_node: Vec<Option<NodeId>>,
    /// Number of completed stages.
    completed: usize,
}

impl WorkflowInstance {
    /// Creates the instance for `app`'s DAG shape.
    pub fn new(
        id: InvocationId,
        app_id: AppId,
        app: &AppSpec,
        arrived_at: SimTime,
        slo: SimTime,
    ) -> WorkflowInstance {
        let n = app.num_stages();
        let mut remaining_preds = vec![0u8; n];
        for &(_, b) in &app.edges {
            remaining_preds[b] += 1;
        }
        WorkflowInstance {
            id,
            app: app_id,
            arrived_at,
            deadline: arrived_at + slo,
            remaining_preds,
            done: vec![false; n],
            stage_node: vec![None; n],
            completed: 0,
        }
    }

    /// Stage indices ready to enqueue at arrival (no predecessors).
    pub fn entry_stages(&self) -> Vec<usize> {
        self.remaining_preds
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p == 0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Marks `stage` complete on `node`; returns the successor stages that
    /// became ready.
    pub fn complete_stage(&mut self, stage: usize, node: NodeId, app: &AppSpec) -> Vec<usize> {
        assert!(!self.done[stage], "stage {stage} completed twice");
        self.done[stage] = true;
        self.stage_node[stage] = Some(node);
        self.completed += 1;
        let mut ready = Vec::new();
        for &(a, b) in &app.edges {
            if a == stage {
                self.remaining_preds[b] -= 1;
                if self.remaining_preds[b] == 0 {
                    ready.push(b);
                }
            }
        }
        ready
    }

    /// True once every stage has completed.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.completed == self.done.len()
    }

    /// Whether `stage` has completed.
    #[inline]
    pub fn stage_done(&self, stage: usize) -> bool {
        self.done[stage]
    }

    /// The node a completed stage ran on.
    #[inline]
    pub fn stage_node(&self, stage: usize) -> Option<NodeId> {
        self.stage_node[stage]
    }

    /// The input-producing node for `stage`: the node of its last-finishing
    /// predecessor if all predecessors ran on the same node, otherwise any
    /// differing node forces a remote transfer (`None` when preds are on
    /// multiple nodes is *not* used — we return the first pred's node and
    /// let the caller compare each). For entry stages returns `None`.
    pub fn pred_node(&self, stage: usize, app: &AppSpec) -> Option<NodeId> {
        let preds = app.preds(stage);
        if preds.is_empty() {
            return None;
        }
        // All predecessors must sit on the same node for a local hand-off;
        // otherwise report a node that differs from any single co-location
        // target only if all agree.
        let first = self.stage_node[preds[0]]?;
        if preds.iter().all(|&p| self.stage_node[p] == Some(first)) {
            Some(first)
        } else {
            // Mixed placement: no single local node exists. Report the
            // first pred's node; a dispatch to it still localises one edge.
            Some(first)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esg_model::{AppSpec, FnId};

    fn pipeline3() -> AppSpec {
        AppSpec::pipeline("p", vec![FnId(0), FnId(1), FnId(2)])
    }

    #[test]
    fn queue_fifo_semantics() {
        let mut q = AfwQueue::new();
        for i in 0..5u64 {
            q.push(Job {
                invocation: InvocationId(i),
                slot: i as u32,
                stage: 0,
                ready_at: SimTime::from_ms(i as f64),
                pred_node: None,
            });
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.oldest_ready_at(), Some(SimTime::from_ms(0.0)));
        let taken = q.take(2);
        assert_eq!(taken.len(), 2);
        assert_eq!(taken[0].invocation, InvocationId(0));
        assert_eq!(q.len(), 3);
        // Taking more than available drains the queue.
        let rest = q.take(10);
        assert_eq!(rest.len(), 3);
        assert!(q.is_empty());
        assert_eq!(q.oldest_ready_at(), None);
    }

    #[test]
    fn linear_workflow_progression() {
        let app = pipeline3();
        let mut w = WorkflowInstance::new(
            InvocationId(1),
            AppId(0),
            &app,
            SimTime::from_ms(10.0),
            SimTime::from_ms(500.0),
        );
        assert_eq!(w.entry_stages(), vec![0]);
        assert!(!w.is_complete());
        let ready = w.complete_stage(0, NodeId(3), &app);
        assert_eq!(ready, vec![1]);
        assert_eq!(w.stage_node(0), Some(NodeId(3)));
        assert_eq!(w.pred_node(1, &app), Some(NodeId(3)));
        let ready = w.complete_stage(1, NodeId(4), &app);
        assert_eq!(ready, vec![2]);
        let ready = w.complete_stage(2, NodeId(4), &app);
        assert!(ready.is_empty());
        assert!(w.is_complete());
        assert_eq!(w.deadline, SimTime::from_ms(510.0));
    }

    #[test]
    fn diamond_join_waits_for_both_branches() {
        let app = AppSpec::dag(
            "d",
            vec![FnId(0), FnId(1), FnId(2), FnId(3)],
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
        );
        let mut w = WorkflowInstance::new(
            InvocationId(0),
            AppId(0),
            &app,
            SimTime::ZERO,
            SimTime::from_ms(100.0),
        );
        assert_eq!(w.entry_stages(), vec![0]);
        let r = w.complete_stage(0, NodeId(0), &app);
        assert_eq!(r, vec![1, 2]);
        let r = w.complete_stage(1, NodeId(1), &app);
        assert!(r.is_empty(), "join must wait for the second branch");
        let r = w.complete_stage(2, NodeId(1), &app);
        assert_eq!(r, vec![3]);
        // Both preds on node 1 -> local hand-off.
        assert_eq!(w.pred_node(3, &app), Some(NodeId(1)));
        let r = w.complete_stage(3, NodeId(1), &app);
        assert!(r.is_empty());
        assert!(w.is_complete());
    }

    #[test]
    fn entry_stage_has_no_pred_node() {
        let app = pipeline3();
        let w = WorkflowInstance::new(
            InvocationId(0),
            AppId(0),
            &app,
            SimTime::ZERO,
            SimTime::from_ms(1.0),
        );
        assert_eq!(w.pred_node(0, &app), None);
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_completion_panics() {
        let app = pipeline3();
        let mut w = WorkflowInstance::new(
            InvocationId(0),
            AppId(0),
            &app,
            SimTime::ZERO,
            SimTime::from_ms(1.0),
        );
        w.complete_stage(0, NodeId(0), &app);
        w.complete_stage(0, NodeId(0), &app);
    }

    #[test]
    fn mixed_pred_nodes_reports_first() {
        let app = AppSpec::dag(
            "d",
            vec![FnId(0), FnId(1), FnId(2), FnId(3)],
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
        );
        let mut w = WorkflowInstance::new(
            InvocationId(0),
            AppId(0),
            &app,
            SimTime::ZERO,
            SimTime::from_ms(100.0),
        );
        w.complete_stage(0, NodeId(0), &app);
        w.complete_stage(1, NodeId(1), &app);
        w.complete_stage(2, NodeId(2), &app);
        assert_eq!(w.pred_node(3, &app), Some(NodeId(1)));
    }
}
