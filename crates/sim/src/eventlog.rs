//! A small observability tap over the [`SchedulerEvent`] stream: a
//! bounded ring buffer of typed records plus per-queue backlog/latency
//! counters.
//!
//! The event stream is the control plane's narration of everything it
//! does; until this module, its only consumer was the golden-digest
//! harness in `tests/control_plane_equivalence.rs`, which rebuilt its
//! own ad-hoc string log. `EventLog` is the shared hook (the first slice
//! of the event-sourced-observability roadmap item): tests replay the
//! ring to fingerprint a run's dispatch trace, and policies or
//! dashboards read the per-queue counters (live backlog, dispatch
//! counts, queue-wait aggregates, shed totals) without bookkeeping of
//! their own.
//!
//! Feed it from any [`Scheduler::on_event`](crate::Scheduler::on_event)
//! (or a wrapper around one):
//!
//! ```
//! use esg_sim::{EventLog, SchedulerEvent};
//! use esg_model::{AppId, InvocationId};
//!
//! let mut log = EventLog::new();
//! log.observe(&SchedulerEvent::JobArrived {
//!     key: esg_sim::QueueKey { app: AppId(0), stage: 0 },
//!     invocation: InvocationId(7),
//!     now_ms: 12.0,
//! });
//! assert_eq!(log.queue(esg_sim::QueueKey { app: AppId(0), stage: 0 }).backlog, 1);
//! ```

use crate::policy::ShedReason;
use crate::sched::{QueueKey, SchedulerEvent};
use crate::shard::ShardStats;
use esg_model::{Config, InvocationId, NodeId};
use std::collections::{HashMap, VecDeque};

/// One captured event (the borrowed invocation lists of the live event
/// are flattened to counts so records are `'static`).
#[derive(Clone, Debug, PartialEq)]
pub struct EventRecord {
    /// Simulated time of the event, ms.
    pub now_ms: f64,
    /// What happened.
    pub kind: EventKind,
}

impl EventRecord {
    /// Captures a live [`SchedulerEvent`] as an owned record (borrowed
    /// invocation lists flatten to counts). This is the one conversion
    /// every tap — [`EventLog`], the trace recorder — shares, so a new
    /// event variant cannot be captured two different ways.
    ///
    /// ```
    /// use esg_sim::{EventKind, EventRecord, SchedulerEvent};
    ///
    /// let r = EventRecord::capture(&SchedulerEvent::RecheckTick { now_ms: 4.0 });
    /// assert_eq!(r, EventRecord { now_ms: 4.0, kind: EventKind::RecheckTick });
    /// ```
    pub fn capture(event: &SchedulerEvent<'_>) -> EventRecord {
        let (now_ms, kind) = match *event {
            SchedulerEvent::JobArrived {
                key,
                invocation,
                now_ms,
            } => (now_ms, EventKind::JobArrived { key, invocation }),
            SchedulerEvent::Dispatched {
                key,
                invocations,
                config,
                node,
                now_ms,
            } => (
                now_ms,
                EventKind::Dispatched {
                    key,
                    config,
                    node,
                    jobs: invocations.len(),
                },
            ),
            SchedulerEvent::TaskCompleted {
                key,
                node,
                config,
                now_ms,
            } => (now_ms, EventKind::TaskCompleted { key, node, config }),
            SchedulerEvent::Churn {
                node,
                joined,
                now_ms,
            } => (now_ms, EventKind::Churn { node, joined }),
            SchedulerEvent::QueueShed {
                key,
                invocations,
                reason,
                now_ms,
            } => (
                now_ms,
                EventKind::QueueShed {
                    key,
                    jobs: invocations.len(),
                    reason,
                },
            ),
            SchedulerEvent::RecheckTick { now_ms } => (now_ms, EventKind::RecheckTick),
            SchedulerEvent::TransferStarted { node, mb, now_ms } => {
                (now_ms, EventKind::TransferStarted { node, mb })
            }
            SchedulerEvent::TransferQueued { node, mb, now_ms } => {
                (now_ms, EventKind::TransferQueued { node, mb })
            }
            SchedulerEvent::TransferCompleted { node, mb, now_ms } => {
                (now_ms, EventKind::TransferCompleted { node, mb })
            }
            SchedulerEvent::ShardCommit {
                shard,
                commits,
                conflicts,
                retries,
                now_ms,
            } => (
                now_ms,
                EventKind::ShardCommit {
                    shard,
                    commits,
                    conflicts,
                    retries,
                },
            ),
        };
        EventRecord { now_ms, kind }
    }
}

/// The owned mirror of [`SchedulerEvent`].
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A job entered `key`.
    JobArrived {
        /// The queue the job joined.
        key: QueueKey,
        /// The owning invocation.
        invocation: InvocationId,
    },
    /// A batch left `key` for `node`.
    Dispatched {
        /// The drained queue.
        key: QueueKey,
        /// The dispatched configuration.
        config: Config,
        /// The hosting node.
        node: NodeId,
        /// Invocations covered by the batch.
        jobs: usize,
    },
    /// A task of `key` finished on `node`.
    TaskCompleted {
        /// The queue whose task completed.
        key: QueueKey,
        /// The hosting node.
        node: NodeId,
        /// The completed task's configuration.
        config: Config,
    },
    /// Cluster membership changed.
    Churn {
        /// The affected node.
        node: NodeId,
        /// Join (true) vs drain (false).
        joined: bool,
    },
    /// An admission policy shed `key`.
    QueueShed {
        /// The shed queue.
        key: QueueKey,
        /// Invocations killed.
        jobs: usize,
        /// Why.
        reason: ShedReason,
    },
    /// The platform retried the parked queues.
    RecheckTick,
    /// A data-plane transfer started moving onto `node` (data plane
    /// enabled only).
    TransferStarted {
        /// The destination node.
        node: NodeId,
        /// Aggregate payload, MB.
        mb: f64,
    },
    /// A transfer was held back by `node`'s full staging buffer.
    TransferQueued {
        /// The destination node.
        node: NodeId,
        /// Aggregate payload, MB.
        mb: f64,
    },
    /// A transfer onto `node` finished and released its staging reserve.
    TransferCompleted {
        /// The destination node.
        node: NodeId,
        /// Aggregate payload, MB.
        mb: f64,
    },
    /// One shard committed a staged round (sharded control plane only).
    ShardCommit {
        /// The committing shard's index.
        shard: usize,
        /// Decisions that landed.
        commits: u64,
        /// Staged placements invalidated by cross-shard movement.
        conflicts: u64,
        /// Conflicted decisions handed back for a retry.
        retries: u64,
    },
}

/// Per-queue counters accumulated from the event stream.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QueueCounters {
    /// Jobs that entered the queue.
    pub arrivals: u64,
    /// Batches dispatched.
    pub dispatches: u64,
    /// Jobs covered by dispatched batches.
    pub dispatched_jobs: u64,
    /// Tasks completed.
    pub completions: u64,
    /// Jobs dropped by admission shedding.
    pub shed_jobs: u64,
    /// Jobs currently queued, as seen through the event stream.
    pub backlog: u64,
    /// Sum of per-job queue waits (arrival → dispatch), ms.
    pub wait_sum_ms: f64,
    /// Largest observed per-job queue wait, ms.
    pub wait_max_ms: f64,
}

impl QueueCounters {
    /// Mean queue wait of dispatched jobs, ms (0 when none dispatched).
    pub fn mean_wait_ms(&self) -> f64 {
        if self.dispatched_jobs == 0 {
            0.0
        } else {
            self.wait_sum_ms / self.dispatched_jobs as f64
        }
    }
}

/// Data-plane transfer totals accumulated from the event stream (all
/// zero when the run used the classic scalar transfer model, which
/// emits no transfer events).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TransferCounters {
    /// Transfers that started moving.
    pub started: u64,
    /// Transfers held back by a full staging buffer (each later starts,
    /// so `queued` counts delays, not drops).
    pub queued: u64,
    /// Transfers that finished.
    pub completed: u64,
    /// Transfers currently in flight (started − completed).
    pub inflight: u64,
    /// High-water mark of in-flight transfers.
    pub peak_inflight: u64,
    /// Cumulative payload started, MB.
    pub total_mb: f64,
}

/// The ring-buffer tap: bounded record history + per-queue counters.
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    capacity: usize,
    ring: VecDeque<EventRecord>,
    dropped: u64,
    counters: HashMap<QueueKey, QueueCounters>,
    /// Queue-entry instant of each live job, keyed `(queue, invocation)`
    /// — bounded by the number of queued jobs, drained at dispatch/shed.
    pending: HashMap<(QueueKey, InvocationId), f64>,
    /// Totals accumulated from [`SchedulerEvent::ShardCommit`] events
    /// (`rounds` counts the commit events themselves; `commit_wall_us`
    /// is host wall time the event stream deliberately omits, so it
    /// stays 0 here).
    shard: ShardStats,
    /// Totals accumulated from the transfer event family (data plane
    /// enabled only; all zero otherwise).
    transfers: TransferCounters,
}

/// Default ring capacity (records beyond it evict the oldest).
pub const DEFAULT_EVENT_LOG_CAPACITY: usize = 4096;

impl EventLog {
    /// A log holding the last [`DEFAULT_EVENT_LOG_CAPACITY`] records.
    pub fn new() -> EventLog {
        EventLog::with_capacity(DEFAULT_EVENT_LOG_CAPACITY)
    }

    /// A log holding the last `capacity` records (counters are exact
    /// regardless of capacity; only the replayable history is bounded).
    pub fn with_capacity(capacity: usize) -> EventLog {
        EventLog {
            capacity: capacity.max(1),
            ring: VecDeque::with_capacity(capacity.clamp(1, 4096)),
            dropped: 0,
            counters: HashMap::new(),
            pending: HashMap::new(),
            shard: ShardStats::default(),
            transfers: TransferCounters::default(),
        }
    }

    /// Ingests one control-plane event.
    pub fn observe(&mut self, event: &SchedulerEvent<'_>) {
        match *event {
            SchedulerEvent::JobArrived {
                key,
                invocation,
                now_ms,
            } => {
                let c = self.counters.entry(key).or_default();
                c.arrivals += 1;
                c.backlog += 1;
                self.pending.insert((key, invocation), now_ms);
            }
            SchedulerEvent::Dispatched {
                key,
                invocations,
                now_ms,
                ..
            } => {
                let mut wait_sum = 0.0f64;
                let mut wait_max = 0.0f64;
                for &inv in invocations {
                    if let Some(entered) = self.pending.remove(&(key, inv)) {
                        let w = (now_ms - entered).max(0.0);
                        wait_sum += w;
                        wait_max = wait_max.max(w);
                    }
                }
                let c = self.counters.entry(key).or_default();
                c.dispatches += 1;
                c.dispatched_jobs += invocations.len() as u64;
                c.backlog = c.backlog.saturating_sub(invocations.len() as u64);
                c.wait_sum_ms += wait_sum;
                c.wait_max_ms = c.wait_max_ms.max(wait_max);
            }
            SchedulerEvent::TaskCompleted { key, .. } => {
                self.counters.entry(key).or_default().completions += 1;
            }
            SchedulerEvent::Churn { .. } | SchedulerEvent::RecheckTick { .. } => {}
            SchedulerEvent::TransferStarted { mb, .. } => {
                self.transfers.started += 1;
                self.transfers.inflight += 1;
                self.transfers.total_mb += mb;
                self.transfers.peak_inflight =
                    self.transfers.peak_inflight.max(self.transfers.inflight);
            }
            SchedulerEvent::TransferQueued { .. } => {
                self.transfers.queued += 1;
            }
            SchedulerEvent::TransferCompleted { .. } => {
                self.transfers.completed += 1;
                self.transfers.inflight = self.transfers.inflight.saturating_sub(1);
            }
            SchedulerEvent::QueueShed {
                key, invocations, ..
            } => {
                for &inv in invocations {
                    self.pending.remove(&(key, inv));
                }
                let c = self.counters.entry(key).or_default();
                c.shed_jobs += invocations.len() as u64;
                c.backlog = c.backlog.saturating_sub(invocations.len() as u64);
            }
            SchedulerEvent::ShardCommit {
                commits,
                conflicts,
                retries,
                ..
            } => {
                self.shard.rounds += 1;
                self.shard.commits += commits;
                self.shard.conflicts += conflicts;
                self.shard.retries += retries;
            }
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(EventRecord::capture(event));
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &EventRecord> {
        self.ring.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Records evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// One queue's counters (zeroes when the queue never appeared).
    pub fn queue(&self, key: QueueKey) -> QueueCounters {
        self.counters.get(&key).copied().unwrap_or_default()
    }

    /// All per-queue counters, in unspecified order.
    pub fn queues(&self) -> impl Iterator<Item = (&QueueKey, &QueueCounters)> {
        self.counters.iter()
    }

    /// Total live backlog across queues.
    pub fn total_backlog(&self) -> u64 {
        self.counters.values().map(|c| c.backlog).sum()
    }

    /// Shard-commit totals seen so far (all zero on the single-threaded
    /// control plane, which never emits [`SchedulerEvent::ShardCommit`]).
    /// `commit_wall_us` is always 0 — the event stream carries no host
    /// wall time.
    pub fn shard_stats(&self) -> ShardStats {
        self.shard
    }

    /// Data-plane transfer totals seen so far (all zero on scalar runs,
    /// which emit no transfer events).
    pub fn transfer_stats(&self) -> TransferCounters {
        self.transfers
    }

    /// Forgets history and counters (capacity is kept).
    pub fn clear(&mut self) {
        self.ring.clear();
        self.dropped = 0;
        self.counters.clear();
        self.pending.clear();
        self.shard = ShardStats::default();
        self.transfers = TransferCounters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esg_model::AppId;

    fn key(app: u32, stage: usize) -> QueueKey {
        QueueKey {
            app: AppId(app),
            stage,
        }
    }

    #[test]
    fn counters_track_backlog_and_wait() {
        let mut log = EventLog::new();
        let k = key(0, 1);
        for (i, t) in [(0u64, 10.0), (1, 14.0)] {
            log.observe(&SchedulerEvent::JobArrived {
                key: k,
                invocation: InvocationId(i),
                now_ms: t,
            });
        }
        assert_eq!(log.queue(k).backlog, 2);
        assert_eq!(log.total_backlog(), 2);
        let invs = [InvocationId(0), InvocationId(1)];
        log.observe(&SchedulerEvent::Dispatched {
            key: k,
            invocations: &invs,
            config: Config::new(2, 1, 1),
            node: NodeId(3),
            now_ms: 20.0,
        });
        let c = log.queue(k);
        assert_eq!(c.backlog, 0);
        assert_eq!(c.dispatches, 1);
        assert_eq!(c.dispatched_jobs, 2);
        // Waits: 10 ms and 6 ms → mean 8, max 10.
        assert!((c.mean_wait_ms() - 8.0).abs() < 1e-12);
        assert_eq!(c.wait_max_ms, 10.0);
        log.observe(&SchedulerEvent::TaskCompleted {
            key: k,
            node: NodeId(3),
            config: Config::new(2, 1, 1),
            now_ms: 30.0,
        });
        assert_eq!(log.queue(k).completions, 1);
        assert_eq!(log.len(), 4);
    }

    #[test]
    fn shed_drains_backlog_and_counts() {
        let mut log = EventLog::new();
        let k = key(1, 0);
        for i in 0..3u64 {
            log.observe(&SchedulerEvent::JobArrived {
                key: k,
                invocation: InvocationId(i),
                now_ms: 1.0,
            });
        }
        let invs = [InvocationId(0), InvocationId(1), InvocationId(2)];
        log.observe(&SchedulerEvent::QueueShed {
            key: k,
            invocations: &invs,
            reason: ShedReason::GsloUnattainable,
            now_ms: 2.0,
        });
        let c = log.queue(k);
        assert_eq!(c.shed_jobs, 3);
        assert_eq!(c.backlog, 0);
        assert_eq!(c.dispatched_jobs, 0);
        assert!(matches!(
            log.records().last().expect("recorded").kind,
            EventKind::QueueShed { jobs: 3, .. }
        ));
    }

    #[test]
    fn ring_is_bounded_counters_are_exact() {
        let mut log = EventLog::with_capacity(2);
        let k = key(0, 0);
        for i in 0..5u64 {
            log.observe(&SchedulerEvent::JobArrived {
                key: k,
                invocation: InvocationId(i),
                now_ms: i as f64,
            });
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        assert_eq!(log.queue(k).arrivals, 5, "counters outlive evictions");
        let first = log.records().next().expect("retained");
        assert_eq!(first.now_ms, 3.0, "oldest retained record is #3");
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 0);
        assert_eq!(log.queue(k), QueueCounters::default());
    }

    #[test]
    fn shard_commits_accumulate_into_shard_stats() {
        let mut log = EventLog::new();
        for (shard, commits, conflicts, retries) in [(0usize, 5u64, 1u64, 1u64), (1, 3, 0, 0)] {
            log.observe(&SchedulerEvent::ShardCommit {
                shard,
                commits,
                conflicts,
                retries,
                now_ms: 100.0,
            });
        }
        let s = log.shard_stats();
        assert_eq!(s.rounds, 2);
        assert_eq!(s.commits, 8);
        assert_eq!(s.conflicts, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.commit_wall_us, 0, "event stream carries no wall time");
        assert_eq!(log.queues().count(), 0, "no queue counters touched");
        assert!(matches!(
            log.records().next().expect("recorded").kind,
            EventKind::ShardCommit {
                shard: 0,
                commits: 5,
                ..
            }
        ));
        log.clear();
        assert_eq!(log.shard_stats(), ShardStats::default());
    }

    #[test]
    fn transfer_events_roll_up_without_queue_counters() {
        let mut log = EventLog::new();
        for node in [2u32, 5] {
            log.observe(&SchedulerEvent::TransferStarted {
                node: NodeId(node),
                mb: 64.0,
                now_ms: 1.0,
            });
        }
        log.observe(&SchedulerEvent::TransferQueued {
            node: NodeId(2),
            mb: 256.0,
            now_ms: 2.0,
        });
        log.observe(&SchedulerEvent::TransferCompleted {
            node: NodeId(2),
            mb: 64.0,
            now_ms: 3.0,
        });
        let t = log.transfer_stats();
        assert_eq!(t.started, 2);
        assert_eq!(t.queued, 1);
        assert_eq!(t.completed, 1);
        assert_eq!(t.inflight, 1);
        assert_eq!(t.peak_inflight, 2);
        assert!((t.total_mb - 128.0).abs() < 1e-12);
        assert_eq!(log.queues().count(), 0, "no queue counters touched");
        assert_eq!(log.len(), 4);
        log.clear();
        assert_eq!(log.transfer_stats(), TransferCounters::default());
    }

    #[test]
    fn churn_and_recheck_record_without_queue_counters() {
        let mut log = EventLog::new();
        log.observe(&SchedulerEvent::Churn {
            node: NodeId(4),
            joined: false,
            now_ms: 9.0,
        });
        log.observe(&SchedulerEvent::RecheckTick { now_ms: 10.0 });
        assert_eq!(log.len(), 2);
        assert_eq!(log.queues().count(), 0);
        assert_eq!(
            log.records().next().expect("churn").kind,
            EventKind::Churn {
                node: NodeId(4),
                joined: false
            }
        );
    }
}
