//! Hierarchical timer wheel.
//!
//! The [`TimerWheel`] is the O(1) backing store behind
//! [`EventQueueKind::Wheel`](crate::event::EventQueueKind): six levels of
//! 64 slots each (6 bits per level, 36 bits ≈ 19 hours of microseconds
//! per *epoch*), per-level `u64` occupancy bitmaps, and a binary-heap
//! overflow for timers beyond the current epoch. Insertion hashes an
//! absolute microsecond timestamp to the highest level where it differs
//! from the cursor; advancing either drains the next occupied level-0
//! slot or cascades the next occupied higher-level slot down one level,
//! so every event is touched at most `LEVELS` times on its way to
//! delivery.
//!
//! Ordering contract: pops come out in `(time, rank)` order where `rank`
//! is the `(class, seq)` pair assigned by the
//! [`EventQueue`](crate::event::EventQueue) facade — *identical* to the
//! binary-heap backend, which is what makes heap-vs-wheel runs
//! dispatch-trace identical. All events sharing the cursor's timestamp
//! meet in a tiny per-tick heap, so same-tick ordering (including
//! zero-delay re-schedules landing on the current tick) follows the same
//! rank rule as the big heap.

use crate::event::Event;
use esg_model::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Bits per wheel level (64 slots).
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Number of levels.
const LEVELS: usize = 6;
/// Bits covered by the in-wheel horizon; timestamps agreeing with the
/// cursor above this boundary are "in epoch".
const EPOCH_BITS: u32 = LEVEL_BITS * LEVELS as u32;

/// The deterministic tie-break rank assigned by the facade:
/// `(class, sequence)` — see `EventQueue::push`.
pub(crate) type Rank = (u8, u64);

/// A hierarchical timer wheel over absolute microsecond timestamps.
///
/// Events must never be scheduled before the time of the last delivered
/// event (the simulation loop guarantees monotone scheduling; an
/// exactly-now schedule joins the current tick).
#[derive(Debug, Default)]
pub struct TimerWheel {
    /// Slot storage, `level * SLOTS + slot`. Entries keep their absolute
    /// due time for re-insertion during cascades.
    slots: Vec<Vec<(u64, Rank, Event)>>,
    /// Per-level occupancy bitmaps (bit `s` ⇔ `slots[level*64+s]` non-empty).
    occupied: [u64; LEVELS],
    /// Absolute microsecond of the tick currently being delivered; never
    /// decreases.
    cursor: u64,
    /// `cursor >> EPOCH_BITS`; events in later epochs wait in `overflow`.
    epoch: u64,
    /// Events due exactly at `cursor`, ordered by rank.
    tick: BinaryHeap<Reverse<(Rank, Event)>>,
    /// Events beyond the current epoch, promoted wholesale when the wheel
    /// drains.
    overflow: BinaryHeap<Reverse<(u64, Rank, Event)>>,
    len: usize,
}

impl TimerWheel {
    /// Creates an empty wheel with the cursor at time zero.
    pub fn new() -> Self {
        TimerWheel {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            ..TimerWheel::default()
        }
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `event` at absolute microsecond `at_us` with tie-break
    /// `rank`. `at_us` must be `>= `the last delivered tick.
    pub(crate) fn insert(&mut self, at_us: u64, rank: Rank, event: Event) {
        self.len += 1;
        self.place(at_us, rank, event);
    }

    /// Places an entry without touching `len` (shared by insert and the
    /// cascade/promotion paths).
    fn place(&mut self, at_us: u64, rank: Rank, event: Event) {
        debug_assert!(
            at_us >= self.cursor,
            "scheduled in the past: {at_us} < cursor {}",
            self.cursor
        );
        if at_us <= self.cursor {
            // Due exactly now: joins the tick being delivered.
            self.tick.push(Reverse((rank, event)));
            return;
        }
        if at_us >> EPOCH_BITS != self.epoch {
            self.overflow.push(Reverse((at_us, rank, event)));
            return;
        }
        // Highest 6-bit group where the timestamp differs from the cursor;
        // all groups above agree, so the slot lies ahead of the cursor's
        // position on that level.
        let diff = at_us ^ self.cursor;
        let level = ((63 - diff.leading_zeros()) / LEVEL_BITS) as usize;
        debug_assert!(level < LEVELS);
        let slot = ((at_us >> (LEVEL_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.slots[level * SLOTS + slot].push((at_us, rank, event));
        self.occupied[level] |= 1 << slot;
    }

    /// Ensures the tick buffer holds the earliest pending events, moving
    /// the cursor forward as needed. Returns false when the wheel is
    /// empty.
    fn advance(&mut self) -> bool {
        'outer: while self.tick.is_empty() {
            // Level 0: the next occupied slot at or after the cursor *is*
            // the earliest event (higher levels only hold later times).
            let cur0 = (self.cursor & (SLOTS as u64 - 1)) as u32;
            let mask0 = self.occupied[0] & (u64::MAX << cur0);
            if mask0 != 0 {
                let s = mask0.trailing_zeros() as u64;
                self.cursor = (self.cursor & !(SLOTS as u64 - 1)) | s;
                self.occupied[0] &= !(1 << s);
                for (at, rank, ev) in self.slots[s as usize].split_off(0) {
                    debug_assert_eq!(at, self.cursor, "level-0 slot holds a foreign tick");
                    self.tick.push(Reverse((rank, ev)));
                }
                return true;
            }
            // Cascade: the lowest level with an occupied slot at or after
            // its cursor group holds the earliest remaining event; move
            // the cursor to that block's start and re-place its entries
            // one level down (or into the tick).
            for level in 1..LEVELS {
                let shift = LEVEL_BITS * level as u32;
                let g = ((self.cursor >> shift) & (SLOTS as u64 - 1)) as u32;
                let mask = self.occupied[level] & (u64::MAX << g);
                if mask == 0 {
                    continue;
                }
                let s = mask.trailing_zeros() as u64;
                let block = 1u64 << (shift + LEVEL_BITS);
                self.cursor = (self.cursor & !(block - 1)) | (s << shift);
                self.occupied[level] &= !(1 << s);
                for (at, rank, ev) in self.slots[level * SLOTS + s as usize].split_off(0) {
                    self.place(at, rank, ev);
                }
                continue 'outer;
            }
            // Wheel empty: promote the next overflow epoch wholesale.
            let Some(&Reverse((at, _, _))) = self.overflow.peek() else {
                return false;
            };
            let e = at >> EPOCH_BITS;
            debug_assert!(e > self.epoch);
            self.epoch = e;
            self.cursor = e << EPOCH_BITS;
            while let Some(&Reverse((a, _, _))) = self.overflow.peek() {
                if a >> EPOCH_BITS != e {
                    break;
                }
                let Reverse((a, rank, ev)) = self.overflow.pop().expect("peeked");
                self.place(a, rank, ev);
            }
        }
        true
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.advance().then(|| SimTime::from_us(self.cursor))
    }

    /// Pops the earliest event; rank breaks ties.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        if !self.advance() {
            return None;
        }
        let Reverse((_, ev)) = self.tick.pop().expect("advance filled the tick");
        self.len -= 1;
        Some((SimTime::from_us(self.cursor), ev))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimerWheel) -> Vec<(u64, Event)> {
        std::iter::from_fn(|| w.pop().map(|(t, e)| (t.0, e))).collect()
    }

    #[test]
    fn delivers_in_time_order_across_levels() {
        let mut w = TimerWheel::new();
        // One timer per level boundary: 1, 64, 64², … plus a far edge.
        let times = [
            1u64,
            63,
            64,
            65,
            4_095,
            4_096,
            262_144,
            1 << 30,
            (1 << 36) - 1,
        ];
        for (i, &t) in times.iter().enumerate() {
            w.insert(t, (2, i as u64), Event::ExecReady(i as u64));
        }
        let got = drain(&mut w);
        let want: Vec<(u64, Event)> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, Event::ExecReady(i as u64)))
            .collect();
        assert_eq!(got, want);
        assert!(w.is_empty());
    }

    #[test]
    fn same_tick_orders_by_rank_not_insertion() {
        let mut w = TimerWheel::new();
        w.insert(500, (2, 10), Event::ControllerStep);
        w.insert(500, (0, 4), Event::Arrival(4));
        w.insert(500, (1, 0), Event::Churn(0));
        w.insert(500, (0, 3), Event::Arrival(3));
        let got = drain(&mut w);
        assert_eq!(
            got,
            vec![
                (500, Event::Arrival(3)),
                (500, Event::Arrival(4)),
                (500, Event::Churn(0)),
                (500, Event::ControllerStep),
            ]
        );
    }

    #[test]
    fn far_future_overflow_promotes_in_order() {
        let mut w = TimerWheel::new();
        let epoch = 1u64 << EPOCH_BITS;
        // Two epochs ahead, one epoch ahead, and a near event.
        w.insert(2 * epoch + 7, (2, 0), Event::ExecReady(0));
        w.insert(epoch + 3, (2, 1), Event::ExecReady(1));
        w.insert(epoch, (2, 2), Event::ExecReady(2));
        w.insert(42, (2, 3), Event::ExecReady(3));
        let got = drain(&mut w);
        assert_eq!(
            got,
            vec![
                (42, Event::ExecReady(3)),
                (epoch, Event::ExecReady(2)),
                (epoch + 3, Event::ExecReady(1)),
                (2 * epoch + 7, Event::ExecReady(0)),
            ]
        );
    }

    #[test]
    fn cascade_at_level_boundary_preserves_interleaved_pushes() {
        let mut w = TimerWheel::new();
        // 4096 = level-2 boundary; park a timer there, then pops pull the
        // cursor close so a later push at 4096 lands on level 0/tick.
        w.insert(4_096, (2, 0), Event::TaskComplete(0));
        w.insert(4_095, (2, 1), Event::TaskComplete(1));
        assert_eq!(
            w.pop(),
            Some((SimTime::from_us(4_095), Event::TaskComplete(1)))
        );
        // Pushed after the cursor moved: same time as the parked timer but
        // a *lower* rank — must still pop first.
        w.insert(4_096, (0, 0), Event::Arrival(0));
        assert_eq!(w.pop(), Some((SimTime::from_us(4_096), Event::Arrival(0))));
        assert_eq!(
            w.pop(),
            Some((SimTime::from_us(4_096), Event::TaskComplete(0)))
        );
        assert!(w.pop().is_none());
    }

    #[test]
    fn zero_delay_reschedule_joins_current_tick() {
        let mut w = TimerWheel::new();
        w.insert(100, (2, 0), Event::ControllerStep);
        let (t, ev) = w.pop().expect("scheduled");
        assert_eq!((t.0, ev), (100, Event::ControllerStep));
        // A handler re-arming itself with zero delay lands on the tick
        // being delivered, not a future one.
        w.insert(100, (2, 1), Event::ControllerStep);
        w.insert(100, (2, 2), Event::Prewarm(1, 1));
        assert_eq!(
            w.pop(),
            Some((SimTime::from_us(100), Event::ControllerStep))
        );
        assert_eq!(w.pop(), Some((SimTime::from_us(100), Event::Prewarm(1, 1))));
        assert!(w.pop().is_none());
        assert!(w.is_empty());
    }

    #[test]
    fn peek_is_idempotent_and_matches_pop() {
        let mut w = TimerWheel::new();
        w.insert(9_999, (2, 0), Event::ExecReady(1));
        assert_eq!(w.peek_time(), Some(SimTime::from_us(9_999)));
        assert_eq!(w.peek_time(), Some(SimTime::from_us(9_999)));
        assert_eq!(w.len(), 1);
        assert_eq!(
            w.pop(),
            Some((SimTime::from_us(9_999), Event::ExecReady(1)))
        );
        assert_eq!(w.peek_time(), None);
    }
}
