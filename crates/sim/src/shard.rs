//! The sharded round-driver control plane: queue partitioning, per-shard
//! policy stacks, and the optimistic-concurrency counters.
//!
//! One controller loop deciding every queue caps platform throughput
//! long before decision *quality* does (Carver-style DAG engines and
//! high-throughput GPU-serverless schedulers both hit this wall): each
//! classic round scans the whole queue table to build its eligible set.
//! Sharding splits that scan. A [`QueuePartitioner`] statically hashes
//! every `QueueKey` onto one of N shards, and the platform runs one
//! round driver per shard, each scanning only its own partition —
//! O(queues / shards) per decision instead of O(queues).
//!
//! Shards share the generation-stamped
//! [`ClusterState`](crate::ClusterState) optimistically instead of
//! locking it:
//!
//! 1. **Stage** — a shard snapshots the state's
//!    [generation](crate::ClusterState::generation) after refresh,
//!    scans its partition, and drives `schedule_round` with its own *clone* of the
//!    scheduler's [`PolicyStack`] (see
//!    [`RoundPolicy::clone_box`](crate::RoundPolicy::clone_box)) — so
//!    per-shard policy state is shard-local by construction and no
//!    stage ever observes another shard's half-round.
//! 2. **Commit** — staged `(QueueKey, Outcome)` decisions are applied
//!    in shard-index order. Before a shard's batch commits, the commit
//!    step re-validates its snapshot with
//!    [`moved_since`](crate::ClusterState::moved_since): when the state
//!    moved under the shard *and* a staged placement no longer fits,
//!    that decision is a **conflict** — the loser's queue is left
//!    undecided and its round is retried (re-staged and re-searched
//!    against fresh state) up to a bounded number of times before
//!    falling back to the classic recheck park.
//!
//! Everything here is deterministic for a fixed seed and shard count:
//! the partition is a pure hash of the key, shards stage and commit in
//! index order, and retries re-enter the same ordered loop. With one
//! shard the protocol degenerates to exactly the classic driver (a
//! single batch can only conflict with itself, which the snapshot rules
//! out), pinned bit-for-bit by `tests/shard_equivalence.rs` and the
//! golden control-plane digest.

use crate::policy::{PolicyStack, PolicyStats};
use crate::sched::{Outcome, QueueKey, RoundCtx, Scheduler};

/// Static queue-to-shard partitioning: a pure FNV-1a hash of the
/// `QueueKey`, so the assignment is stable across rounds, runs, and
/// hosts (the determinism pin) and needs no shared table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueuePartitioner {
    shards: usize,
}

impl QueuePartitioner {
    /// A partitioner over `shards` shards (at least 1).
    pub fn new(shards: usize) -> QueuePartitioner {
        assert!(shards >= 1, "a control plane has at least one shard");
        QueuePartitioner { shards }
    }

    /// Number of shards.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key` — the same FNV-1a byte scheme as the
    /// home-invoker hash, reduced modulo the shard count.
    pub fn shard_of(&self, key: QueueKey) -> usize {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in key
            .app
            .0
            .to_le_bytes()
            .into_iter()
            .chain((key.stage as u64).to_le_bytes())
        {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        (h % self.shards as u64) as usize
    }

    /// Partitions `keys` into per-shard member lists of *indices into
    /// `keys`*, each ascending — so a shard's scan order is the classic
    /// controller scan order restricted to its partition (with one
    /// shard, exactly the classic order).
    pub fn partition(&self, keys: &[QueueKey]) -> Vec<Vec<usize>> {
        let mut members = vec![Vec::new(); self.shards];
        for (i, &key) in keys.iter().enumerate() {
            members[self.shard_of(key)].push(i);
        }
        members
    }
}

/// Counters of the sharded commit protocol, embedded in
/// [`SchedulerStats`](crate::SchedulerStats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Per-shard staging rounds driven (a retry stages a fresh round).
    pub rounds: u64,
    /// Decisions committed (dispatches, parks, defers, sheds).
    pub commits: u64,
    /// Staged placements invalidated by another shard's commit.
    pub conflicts: u64,
    /// Conflicted rounds sent back for a retry (excludes the bounded
    /// few that exhausted their retry budget and fell back to the
    /// classic recheck park).
    pub retries: u64,
    /// Wall-clock µs spent in commit phases. Host-dependent, so it is
    /// excluded from the canonical Debug dump the determinism suite
    /// hashes (like `ExperimentResult::wall_overhead_ms`).
    pub commit_wall_us: u64,
}

impl ShardStats {
    /// Component-wise sum.
    pub fn merge(self, other: ShardStats) -> ShardStats {
        ShardStats {
            rounds: self.rounds + other.rounds,
            commits: self.commits + other.commits,
            conflicts: self.conflicts + other.conflicts,
            retries: self.retries + other.retries,
            commit_wall_us: self.commit_wall_us + other.commit_wall_us,
        }
    }

    /// Fraction of staged placements that conflicted (0 when nothing
    /// was staged).
    pub fn conflict_rate(&self) -> f64 {
        let staged = self.commits + self.conflicts;
        if staged == 0 {
            0.0
        } else {
            self.conflicts as f64 / staged as f64
        }
    }
}

/// The platform-side shard controller: owns the partition, one cloned
/// [`PolicyStack`] per shard, and the protocol counters. The platform
/// (or the scale bench's synthetic driver) builds the per-shard
/// [`RoundCtx`] — this type only decides *with whose policy state* a
/// round runs.
pub struct ShardedController {
    partitioner: QueuePartitioner,
    members: Vec<Vec<usize>>,
    /// One stack clone per shard; empty when the scheduler exposes no
    /// [`Scheduler::round_policy`] (its `schedule_round` then runs
    /// against its own internal state, shared across shards only if the
    /// scheduler itself shares it).
    stacks: Vec<PolicyStack>,
    stats: ShardStats,
}

impl ShardedController {
    /// A controller over `shards` shards for the queue table `keys`.
    /// `proto` is the scheduler's stack to clone per shard (`None` for
    /// schedulers without one).
    pub fn new(shards: usize, keys: &[QueueKey], proto: Option<&PolicyStack>) -> ShardedController {
        let partitioner = QueuePartitioner::new(shards);
        let members = partitioner.partition(keys);
        let stacks = match proto {
            Some(p) => (0..shards).map(|_| p.clone()).collect(),
            None => Vec::new(),
        };
        ShardedController {
            partitioner,
            members,
            stacks,
            stats: ShardStats::default(),
        }
    }

    /// Number of shards.
    #[inline]
    pub fn shards(&self) -> usize {
        self.partitioner.shards()
    }

    /// The partitioner (stable queue→shard assignment).
    pub fn partitioner(&self) -> &QueuePartitioner {
        &self.partitioner
    }

    /// Shard `shard`'s member queues, as ascending indices into the
    /// key table the controller was built over.
    pub fn members(&self, shard: usize) -> &[usize] {
        &self.members[shard]
    }

    /// Registers a queue appended to the key table (the platform's
    /// queue table is append-only within a run).
    pub fn note_new_queue(&mut self, index: usize, key: QueueKey) {
        self.members[self.partitioner.shard_of(key)].push(index);
    }

    /// Protocol counters so far.
    pub fn stats(&self) -> ShardStats {
        self.stats
    }

    /// Mutable protocol counters (the platform's commit step tallies
    /// into these).
    pub fn stats_mut(&mut self) -> &mut ShardStats {
        &mut self.stats
    }

    /// Merged policy counters over the per-shard stacks, or `None` when
    /// the scheduler carries no stack (its own `stats()` already tells
    /// the whole story then).
    pub fn merged_policy_stats(&self) -> Option<PolicyStats> {
        if self.stacks.is_empty() {
            return None;
        }
        Some(
            self.stacks
                .iter()
                .fold(PolicyStats::default(), |acc, s| acc.merge(s.policy_stats())),
        )
    }

    /// Stages one round for `shard`: runs `sched.schedule_round(ctx)`
    /// with the shard's own stack swapped in, so the provided pipeline
    /// (and any budget/ranking state) is shard-local. Schedulers
    /// without a stack run as-is — their `schedule_round` override (or
    /// the classic fast path) needs no per-shard state.
    pub fn stage(
        &mut self,
        shard: usize,
        sched: &mut dyn Scheduler,
        ctx: &RoundCtx<'_>,
    ) -> Vec<(QueueKey, Outcome)> {
        self.stats.rounds += 1;
        if self.stacks.is_empty() {
            return sched.schedule_round(ctx);
        }
        let slot = &mut self.stacks[shard];
        if let Some(p) = sched.round_policy() {
            std::mem::swap(p, slot);
        }
        let decisions = sched.schedule_round(ctx);
        if let Some(p) = sched.round_policy() {
            std::mem::swap(p, slot);
        }
        decisions
    }
}

impl std::fmt::Debug for ShardedController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedController")
            .field("shards", &self.shards())
            .field("stacks", &self.stacks.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esg_model::AppId;

    fn key(app: u32, stage: usize) -> QueueKey {
        QueueKey {
            app: AppId(app),
            stage,
        }
    }

    #[test]
    fn partition_is_stable_total_and_ascending() {
        let keys: Vec<QueueKey> = (0..100u32)
            .flat_map(|a| (0..3usize).map(move |s| key(a, s)))
            .collect();
        for shards in [1usize, 2, 3, 7, 8] {
            let p = QueuePartitioner::new(shards);
            let members = p.partition(&keys);
            assert_eq!(members.len(), shards);
            // Total: every key lands on exactly one shard.
            let mut seen: Vec<usize> = members.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..keys.len()).collect::<Vec<_>>());
            for (s, m) in members.iter().enumerate() {
                assert!(m.is_sorted(), "scan order is classic order");
                for &i in m {
                    assert_eq!(p.shard_of(keys[i]), s, "assignment is the pure hash");
                }
            }
        }
        // One shard owns everything in classic scan order.
        let solo = QueuePartitioner::new(1).partition(&keys);
        assert_eq!(solo[0], (0..keys.len()).collect::<Vec<_>>());
    }

    #[test]
    fn partition_spreads_queues() {
        let keys: Vec<QueueKey> = (0..10_000u32).map(|a| key(a, 0)).collect();
        let members = QueuePartitioner::new(8).partition(&keys);
        for m in &members {
            // FNV over sequential ids spreads within a loose bound.
            assert!(
                (m.len() as f64) > 10_000.0 / 8.0 * 0.7,
                "shard starved: {} queues",
                m.len()
            );
            assert!((m.len() as f64) < 10_000.0 / 8.0 * 1.3);
        }
    }

    #[test]
    fn new_queues_join_their_hash_shard() {
        let keys: Vec<QueueKey> = (0..10u32).map(|a| key(a, 0)).collect();
        let mut ctl = ShardedController::new(4, &keys, None);
        let extra = key(10, 1);
        ctl.note_new_queue(keys.len(), extra);
        let shard = ctl.partitioner().shard_of(extra);
        assert_eq!(ctl.members(shard).last(), Some(&keys.len()));
    }

    #[test]
    fn shard_stats_merge_and_conflict_rate() {
        let a = ShardStats {
            rounds: 4,
            commits: 3,
            conflicts: 1,
            retries: 1,
            commit_wall_us: 10,
        };
        let m = a.merge(ShardStats {
            rounds: 2,
            commits: 5,
            conflicts: 1,
            retries: 0,
            commit_wall_us: 5,
        });
        assert_eq!(m.rounds, 6);
        assert_eq!(m.commits, 8);
        assert_eq!(m.conflicts, 2);
        assert_eq!(m.retries, 1);
        assert_eq!(m.commit_wall_us, 15);
        assert_eq!(m.conflict_rate(), 0.2);
        assert_eq!(ShardStats::default().conflict_rate(), 0.0);
    }
}
