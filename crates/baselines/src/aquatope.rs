//! Aquatope (Zhou et al., ASPLOS '23) extended with GPU sharing (§4.2).
//!
//! "Aquatope relies on an offline training process, in which the
//! application of interest is profiled in many sample executions based on
//! Bayesian Optimization (BO) … the training process starts with 100
//! bootstrapping samples, iterates 50 rounds (we sample five
//! configurations in each round), and selects the best configuration. The
//! nature of its reliance on offline training makes it unable to adapt to
//! dynamic workload changes."
//!
//! Training minimises `cost + penalty · max(0, P95 − SLO)` over the joint
//! per-stage configuration space, evaluated through *noisy* profile
//! samples (offline profiling measures real executions). The learned
//! per-stage configurations are then deployed statically; the planned
//! batch regularly exceeds live queue lengths, producing Table 4's 59–86%
//! configuration-miss rates.

use crate::bo::BoOptimizer;
use esg_model::{AppSpec, Config, NodeId};
use esg_profile::latency_ms;
use esg_sim::{
    place_locality_first, Capabilities, Outcome, PolicySpec, PolicyStack, SchedCtx, Scheduler,
    SchedulerStats,
};
use rand::Rng;

/// The Aquatope baseline scheduler.
#[derive(Debug)]
pub struct AquatopeScheduler {
    optimizer: BoOptimizer,
    /// SLO-violation penalty weight (cents per ms of P95 overrun).
    penalty: f64,
    /// Learned per-app, per-stage configurations.
    plans: Vec<Option<Vec<Config>>>,
    /// Round-policy stack driving `schedule_round` (classic by default).
    policy: PolicyStack,
}

impl Default for AquatopeScheduler {
    fn default() -> Self {
        AquatopeScheduler::new(BoOptimizer::default())
    }
}

impl AquatopeScheduler {
    /// Creates the scheduler with an explicit training budget (tests use
    /// `BoOptimizer::tiny`).
    pub fn new(optimizer: BoOptimizer) -> AquatopeScheduler {
        AquatopeScheduler {
            optimizer,
            penalty: 0.05,
            plans: Vec::new(),
            policy: PolicyStack::classic(),
        }
    }

    /// Replaces the round-policy stack (see `esg_sim::PolicyStack`).
    pub fn with_policy(mut self, policy: PolicyStack) -> Self {
        self.policy = policy;
        self
    }

    /// Offline training for one application.
    fn train(&self, ctx: &SchedCtx<'_>, app: &AppSpec) -> Vec<Config> {
        let grid = ctx.profiles.grid();
        let axes = [grid.batches.clone(), grid.vcpus.clone(), grid.vgpus.clone()];
        let stages = app.num_stages();
        // One dimension per (stage, axis): 3·stages total.
        let dims: Vec<usize> = (0..stages * 3).map(|d| axes[d % 3].len()).collect();
        let p95 = ctx.noise.p95_factor();
        let slo = ctx.slo_ms;
        let sigma = ctx.noise.sigma();
        let penalty = self.penalty;

        let decode = |point: &[usize]| -> Vec<Config> {
            (0..stages)
                .map(|s| {
                    Config::new(
                        axes[0][point[s * 3]],
                        axes[1][point[s * 3 + 1]],
                        axes[2][point[s * 3 + 2]],
                    )
                })
                .collect()
        };

        let (best, _) = self.optimizer.minimize(&dims, |point, rng| {
            let plan = decode(point);
            let mut lat = 0.0;
            let mut cost = 0.0;
            for (s, cfg) in plan.iter().enumerate() {
                let spec = ctx.catalog.get(app.nodes[s]);
                // One noisy offline profiling run per stage sample.
                let noise = 1.0 + sigma * (rng.random::<f64>() * 2.0 - 1.0) * 3.0;
                let l = latency_ms(spec, *cfg) * noise.max(0.05);
                lat += l;
                cost += ctx.price.per_job_cost_cents(*cfg, l);
            }
            cost + penalty * (lat * p95 - slo).max(0.0)
        });
        decode(&best)
    }
}

impl Scheduler for AquatopeScheduler {
    fn name(&self) -> &'static str {
        "Aquatope"
    }

    fn capabilities(&self) -> Capabilities {
        // Table 1 row: GPU sharing ×, inter-function relation √,
        // adaptive ×, data locality ×, pre-warming √.
        Capabilities {
            gpu_sharing: false,
            inter_function_relation: true,
            adaptive: false,
            data_locality: false,
            pre_warming: true,
        }
    }

    fn schedule(&mut self, ctx: &SchedCtx<'_>) -> Outcome {
        if ctx.jobs.is_empty() {
            return Outcome::skip();
        }
        if self.plans.is_empty() {
            self.plans = vec![None; ctx.apps.len()];
        }
        let app_idx = ctx.key.app.index();
        if self.plans[app_idx].is_none() {
            let plan = self.train(ctx, ctx.app_spec());
            self.plans[app_idx] = Some(plan);
        }
        let config = self.plans[app_idx].as_ref().expect("trained above")[ctx.key.stage];
        Outcome {
            candidates: vec![config],
            // Offline training: negligible runtime overhead (§5.2).
            expansions: 1,
            planned_batch: Some(config.batch),
            ..Outcome::default()
        }
    }

    fn place(&mut self, ctx: &SchedCtx<'_>, config: Config) -> Option<NodeId> {
        let preferred = ctx
            .jobs
            .iter()
            .take(config.batch as usize)
            .find_map(|j| j.pred_node);
        place_locality_first(ctx, config.resources(), preferred)
    }

    fn round_policy(&mut self) -> Option<&mut PolicyStack> {
        Some(&mut self.policy)
    }

    fn adopt_policy(&mut self, spec: &PolicySpec) -> bool {
        match spec.sim_stack() {
            Some(stack) => {
                self.policy = stack;
                true
            }
            // ESG cross-queue packing needs esg-core's search machinery.
            None => false,
        }
    }

    fn stats(&self) -> SchedulerStats {
        SchedulerStats::default().with_policy(self.policy.policy_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{ctx_for, idle_cluster, jobs_with_slack};
    use esg_model::SloClass;
    use esg_sim::SimEnv;

    fn tiny() -> AquatopeScheduler {
        AquatopeScheduler::new(BoOptimizer::tiny(11))
    }

    #[test]
    fn trains_once_per_app_then_replays() {
        let env = SimEnv::standard(SloClass::Moderate);
        let cluster = idle_cluster(4);
        let jobs = jobs_with_slack(&[600.0]);
        let mut s = tiny();
        let c0 = ctx_for(&env, &cluster, &jobs, 0, 0, 10.0);
        let out0 = s.schedule(&c0);
        assert_eq!(out0.candidates.len(), 1);
        let plan = s.plans[0].clone().expect("trained");
        assert_eq!(plan.len(), 3);
        // Later stages replay the same static plan.
        let c1 = ctx_for(&env, &cluster, &jobs, 0, 1, 200.0);
        let out1 = s.schedule(&c1);
        assert_eq!(out1.candidates[0], plan[1]);
        assert_eq!(out1.expansions, 1);
        // Plan unchanged after more calls.
        let c2 = ctx_for(&env, &cluster, &jobs, 0, 0, 400.0);
        s.schedule(&c2);
        assert_eq!(s.plans[0].as_ref().expect("still trained"), &plan);
    }

    #[test]
    fn static_plan_reports_planned_batch() {
        let env = SimEnv::standard(SloClass::Relaxed);
        let cluster = idle_cluster(4);
        let jobs = jobs_with_slack(&[1500.0]);
        let mut s = tiny();
        let c = ctx_for(&env, &cluster, &jobs, 1, 0, 10.0);
        let out = s.schedule(&c);
        assert_eq!(out.planned_batch, Some(out.candidates[0].batch));
    }

    #[test]
    fn training_prefers_cheap_feasible_plans() {
        // With a full budget the learned plan should not be wildly
        // over-provisioned: compare to the most expensive possible plan.
        let env = SimEnv::standard(SloClass::Relaxed);
        let cluster = idle_cluster(4);
        let jobs = jobs_with_slack(&[2000.0]);
        let mut s = AquatopeScheduler::new(BoOptimizer {
            bootstrap: 40,
            rounds: 10,
            per_round: 3,
            candidate_pool: 64,
            seed: 5,
        });
        let c = ctx_for(&env, &cluster, &jobs, 0, 0, 10.0);
        s.schedule(&c);
        let plan = s.plans[0].as_ref().expect("trained");
        let plan_cost: f64 = plan
            .iter()
            .zip(&env.apps[0].nodes)
            .map(|(cfg, &f)| {
                let l = latency_ms(env.catalog.get(f), *cfg);
                env.price.per_job_cost_cents(*cfg, l)
            })
            .sum();
        let max_cfg = Config::new(1, 8, 7);
        let max_cost: f64 = env.apps[0]
            .nodes
            .iter()
            .map(|&f| {
                let l = latency_ms(env.catalog.get(f), max_cfg);
                env.price.per_job_cost_cents(max_cfg, l)
            })
            .sum();
        assert!(
            plan_cost < max_cost,
            "BO should beat the most expensive plan: {plan_cost} vs {max_cost}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let env = SimEnv::standard(SloClass::Moderate);
        let cluster = idle_cluster(4);
        let jobs = jobs_with_slack(&[600.0]);
        let plan = |seed: u64| {
            let mut s = AquatopeScheduler::new(BoOptimizer::tiny(seed));
            let c = ctx_for(&env, &cluster, &jobs, 2, 0, 10.0);
            s.schedule(&c);
            s.plans[2].clone().expect("trained")
        };
        assert_eq!(plan(3), plan(3));
    }
}
