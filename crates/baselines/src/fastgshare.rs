//! FaST-GShare (Gu et al. '23) as characterised in §4.2/§5.2.
//!
//! "This work uses FaST-Manager to manage spatio-temporal resources for
//! GPU multiplexing. It also employs an enumeration-based scheduling
//! algorithm which enumerates the configurations based on throughput
//! performance metrics. Its node selection tries to minimize GPU resource
//! fragmentation."
//!
//! The throughput orientation is the behavioural key: FaST-GShare sizes a
//! function to *sustain the arrival rate with the least GPU share*, which
//! satisfies throughput but lets task latency drift high — §5.1 observes
//! its configurations "run too slow" and Fig. 7 shows it at the largest
//! end-to-end latency.

use crate::slo_split::average_service_split;
use esg_model::{Config, NodeId};
use esg_sim::{
    Capabilities, Outcome, PolicySpec, PolicyStack, SchedCtx, Scheduler, SchedulerStats,
};

/// The FaST-GShare baseline scheduler.
#[derive(Debug, Default)]
pub struct FastGShareScheduler {
    shares: Vec<Vec<f64>>,
    /// EWMA of per-queue arrival rate (jobs per ms), keyed by (app, stage).
    rates: std::collections::HashMap<(u32, usize), f64>,
    /// Last observed queue state for rate estimation.
    last_seen: std::collections::HashMap<(u32, usize), (f64, usize)>,
    /// Round-policy stack driving `schedule_round` (classic by default).
    policy: PolicyStack,
}

impl FastGShareScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        FastGShareScheduler::default()
    }

    /// Replaces the round-policy stack (see `esg_sim::PolicyStack`).
    pub fn with_policy(mut self, policy: PolicyStack) -> Self {
        self.policy = policy;
        self
    }

    fn share(&mut self, ctx: &SchedCtx<'_>) -> f64 {
        if self.shares.is_empty() {
            self.shares = ctx
                .apps
                .iter()
                .map(|a| average_service_split(a, ctx.catalog))
                .collect();
        }
        self.shares[ctx.key.app.index()][ctx.key.stage]
    }

    /// Required throughput (jobs/ms): EWMA of observed queue inflow.
    fn required_rate(&mut self, ctx: &SchedCtx<'_>) -> f64 {
        let key = (ctx.key.app.0, ctx.key.stage);
        let now = ctx.now_ms;
        let qlen = ctx.jobs.len();
        let inst = match self.last_seen.insert(key, (now, qlen)) {
            Some((prev_t, _)) if now > prev_t + 1e-9 => qlen as f64 / (now - prev_t),
            _ => {
                // First sight (or same-instant revisit): infer from the
                // oldest wait.
                let wait = ctx.longest_wait_ms().max(1.0);
                qlen as f64 / wait
            }
        };
        let rate = self.rates.entry(key).or_insert(inst);
        *rate = 0.3 * inst + 0.7 * *rate;
        *rate
    }
}

impl Scheduler for FastGShareScheduler {
    fn name(&self) -> &'static str {
        "FaST-GShare"
    }

    fn capabilities(&self) -> Capabilities {
        // Table 1 row: GPU sharing √, inter-function relation ×,
        // adaptive √, data locality ×, pre-warming ×.
        Capabilities {
            gpu_sharing: true,
            inter_function_relation: false,
            adaptive: true,
            data_locality: false,
            pre_warming: false,
        }
    }

    fn schedule(&mut self, ctx: &SchedCtx<'_>) -> Outcome {
        if ctx.jobs.is_empty() {
            return Outcome::skip();
        }
        let required = self.required_rate(ctx);
        let target_ms = ctx.slo_ms * self.share(ctx);
        let qlen = ctx.jobs.len() as u32;
        let entries = ctx.profiles.profile(ctx.function).entries();

        // FaST-GShare also forms batches within a fixed window: holding a
        // sparse queue briefly lets a single GPU share sustain the rate.
        const BATCH_WINDOW_MS: f64 = 20.0;
        let preferred_batch = entries
            .iter()
            .filter(|e| e.config.batch as f64 / e.latency_ms >= required)
            .map(|e| e.config.batch)
            .min()
            .unwrap_or(1);
        if preferred_batch > qlen && ctx.longest_wait_ms() < BATCH_WINDOW_MS {
            return Outcome {
                candidates: Vec::new(),
                expansions: entries.len() as u64,
                planned_batch: None,
                ..Outcome::default()
            };
        }

        // Enumerate: among batchable configurations sustaining the arrival
        // rate, pick the minimal GPU share (then minimal vCPUs, then cost).
        // Prefer deadline-meeting ones when any exist at that GPU share.
        let mut expansions = 0u64;
        let mut best: Option<(&esg_profile::ProfileEntry, bool)> = None;
        for e in entries {
            expansions += 1;
            if e.config.batch > qlen {
                continue;
            }
            let tput = e.config.batch as f64 / e.latency_ms;
            if tput < required {
                continue;
            }
            let meets = e.latency_ms <= target_ms;
            let better = match best {
                None => true,
                Some((cur, cur_meets)) => {
                    let key_new = (
                        e.config.vgpus,
                        !meets as u8,
                        e.config.vcpus,
                        e.per_job_cost_cents,
                    );
                    let key_cur = (
                        cur.config.vgpus,
                        !cur_meets as u8,
                        cur.config.vcpus,
                        cur.per_job_cost_cents,
                    );
                    key_new < key_cur
                }
            };
            if better {
                best = Some((e, meets));
            }
        }

        let candidates = match best {
            Some((e, _)) => vec![e.config],
            None => {
                // Cannot sustain the rate: take the highest-throughput
                // batchable configuration.
                let e = entries
                    .iter()
                    .filter(|e| e.config.batch <= qlen)
                    .max_by(|a, b| {
                        (a.config.batch as f64 / a.latency_ms)
                            .total_cmp(&(b.config.batch as f64 / b.latency_ms))
                    });
                vec![e.map(|e| e.config).unwrap_or(Config::MIN)]
            }
        };
        let planned = candidates.first().map(|c| c.batch);
        Outcome {
            candidates,
            expansions,
            planned_batch: planned,
            ..Outcome::default()
        }
    }

    fn place(&mut self, ctx: &SchedCtx<'_>, config: Config) -> Option<NodeId> {
        // Minimise *GPU* fragmentation: tightest remaining vGPU fit.
        ctx.cluster
            .feasible(config.resources())
            .min_by(|a, b| {
                let left_a = a.free.vgpus - config.vgpus;
                let left_b = b.free.vgpus - config.vgpus;
                left_a.cmp(&left_b).then(a.id.0.cmp(&b.id.0))
            })
            .map(|n| n.id)
    }

    fn round_policy(&mut self) -> Option<&mut PolicyStack> {
        Some(&mut self.policy)
    }

    fn adopt_policy(&mut self, spec: &PolicySpec) -> bool {
        match spec.sim_stack() {
            Some(stack) => {
                self.policy = stack;
                true
            }
            // ESG cross-queue packing needs esg-core's search machinery.
            None => false,
        }
    }

    fn stats(&self) -> SchedulerStats {
        SchedulerStats::default().with_policy(self.policy.policy_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{ctx_for, idle_cluster, jobs_with_slack};
    use esg_model::{Resources, SloClass};
    use esg_sim::SimEnv;

    #[test]
    fn prefers_minimal_gpu_share() {
        let env = SimEnv::standard(SloClass::Relaxed);
        let cluster = idle_cluster(4);
        let jobs = jobs_with_slack(&[2000.0]);
        let mut s = FastGShareScheduler::new();
        let c = ctx_for(&env, &cluster, &jobs, 0, 0, 1000.0);
        let out = s.schedule(&c);
        // Single queued job at a slow rate: one vGPU suffices.
        assert_eq!(out.candidates[0].vgpus, 1, "got {}", out.candidates[0]);
    }

    #[test]
    fn high_rate_forces_bigger_config() {
        let env = SimEnv::standard(SloClass::Relaxed);
        let cluster = idle_cluster(4);
        // A long backlog that arrived fast.
        let jobs = jobs_with_slack(&[1500.0; 8]);
        let mut s = FastGShareScheduler::new();
        // First call seeds the rate from queue/wait; slow stage 2 of
        // background elimination (U2Net 1047ms) needs batching to keep up.
        let c = ctx_for(&env, &cluster, &jobs, 2, 2, 20.0);
        let out = s.schedule(&c);
        assert!(
            out.candidates[0].batch > 1 || out.candidates[0].vgpus > 1,
            "rate pressure should force batching or more vGPUs, got {}",
            out.candidates[0]
        );
    }

    #[test]
    fn gpu_defrag_placement() {
        let env = SimEnv::standard(SloClass::Moderate);
        let mut cluster = idle_cluster(3);
        cluster.node_mut(NodeId(2)).free = Resources::new(16, 2);
        let jobs = jobs_with_slack(&[500.0]);
        let mut s = FastGShareScheduler::new();
        let c = ctx_for(&env, &cluster, &jobs, 0, 0, 50.0);
        // 2 vGPUs fit node 2 exactly -> zero GPU fragmentation there.
        assert_eq!(s.place(&c, Config::new(1, 2, 2)), Some(NodeId(2)));
    }

    #[test]
    fn skip_on_empty_queue() {
        let env = SimEnv::standard(SloClass::Moderate);
        let cluster = idle_cluster(2);
        let mut s = FastGShareScheduler::new();
        let c = ctx_for(&env, &cluster, &[], 1, 0, 5.0);
        assert!(s.schedule(&c).candidates.is_empty());
    }

    #[test]
    fn always_offers_a_candidate_for_nonempty_queue() {
        let env = SimEnv::standard(SloClass::Strict);
        let cluster = idle_cluster(2);
        let jobs = jobs_with_slack(&[10.0; 3]);
        let mut s = FastGShareScheduler::new();
        let c = ctx_for(&env, &cluster, &jobs, 3, 2, 1.0);
        let out = s.schedule(&c);
        assert_eq!(out.candidates.len(), 1);
        assert!(out.planned_batch.is_some());
    }
}
