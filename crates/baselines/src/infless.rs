//! INFless (Yang et al., ASPLOS '22) as characterised in §4.2/§5.2.
//!
//! "INFless schedules jobs by enumerating the configurations for each
//! function without considering the inter-function relations. In worker
//! node selection, a resource efficiency metric is used to maximize the
//! throughput while reducing resource fragmentation."
//!
//! §5.1 explains the resulting behaviour this reproduction must show:
//! INFless "prefer\[s\] to utilize all remaining resources in one invoker",
//! picks low-latency/high-throughput configurations, and consequently has
//! the highest resource cost, starving long pipelines.

use crate::slo_split::average_service_split;
use esg_model::{Config, NodeId};
use esg_profile::ProfileEntry;
use esg_sim::{
    place_min_fragmentation, Capabilities, Outcome, PolicySpec, PolicyStack, SchedCtx, Scheduler,
    SchedulerStats,
};

/// The INFless baseline scheduler.
#[derive(Debug, Default)]
pub struct InflessScheduler {
    /// Cached per-app SLO shares (static, relation-blind).
    shares: Vec<Vec<f64>>,
    /// Round-policy stack driving `schedule_round` (classic by default).
    policy: PolicyStack,
}

impl InflessScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        InflessScheduler::default()
    }

    /// Replaces the round-policy stack (see `esg_sim::PolicyStack`).
    pub fn with_policy(mut self, policy: PolicyStack) -> Self {
        self.policy = policy;
        self
    }

    fn share(&mut self, ctx: &SchedCtx<'_>) -> f64 {
        if self.shares.is_empty() {
            self.shares = ctx
                .apps
                .iter()
                .map(|a| average_service_split(a, ctx.catalog))
                .collect();
        }
        self.shares[ctx.key.app.index()][ctx.key.stage]
    }
}

impl Scheduler for InflessScheduler {
    fn name(&self) -> &'static str {
        "INFless"
    }

    fn capabilities(&self) -> Capabilities {
        // Table 1 row: GPU sharing √, inter-function relation ×,
        // adaptive √, data locality ×, pre-warming √.
        Capabilities {
            gpu_sharing: true,
            inter_function_relation: false,
            adaptive: true,
            data_locality: false,
            pre_warming: true,
        }
    }

    fn schedule(&mut self, ctx: &SchedCtx<'_>) -> Outcome {
        if ctx.jobs.is_empty() {
            return Outcome::skip();
        }
        // Static per-stage deadline: share of the *full* SLO, oblivious to
        // time already consumed upstream (§5.2).
        let target_ms = ctx.slo_ms * self.share(ctx);
        let qlen = ctx.jobs.len() as u32;
        let entries = ctx.profiles.profile(ctx.function).entries();

        // INFless batches within an SLO-aware batching window: if the
        // throughput-preferred batch is larger than the queue and the
        // oldest job has not waited out the window yet, hold the queue.
        const BATCH_WINDOW_MS: f64 = 20.0;
        let preferred_batch = entries
            .iter()
            .filter(|e| e.latency_ms <= target_ms)
            .max_by(|a, b| {
                (a.config.batch as f64 / a.latency_ms)
                    .total_cmp(&(b.config.batch as f64 / b.latency_ms))
            })
            .map(|e| e.config.batch)
            .unwrap_or(1);
        if preferred_batch > qlen && ctx.longest_wait_ms() < BATCH_WINDOW_MS {
            return Outcome {
                candidates: Vec::new(),
                expansions: entries.len() as u64,
                planned_batch: None,
                ..Outcome::default()
            };
        }

        // Enumerate: among configurations meeting the stage deadline (and
        // batchable right now), maximise throughput; resource efficiency
        // (throughput per weighted resource) breaks ties.
        let mut expansions = 0u64;
        let throughput = |e: &ProfileEntry| e.config.batch as f64 / e.latency_ms;
        let efficiency =
            |e: &ProfileEntry| throughput(e) / e.config.resources().weighted(1.0, 16.0 / 7.0);
        // Rank feasible configurations by throughput (efficiency breaks
        // ties) and emit the top few with strictly decreasing resource
        // demand, so placement under contention degrades INFless to the
        // next-best throughput config instead of the recheck path.
        let mut feasible: Vec<&ProfileEntry> = entries
            .iter()
            .inspect(|_| expansions += 1)
            .filter(|e| e.config.batch <= qlen && e.latency_ms <= target_ms)
            .collect();
        feasible.sort_by(|a, b| {
            throughput(b)
                .total_cmp(&throughput(a))
                .then(efficiency(b).total_cmp(&efficiency(a)))
        });
        let mut candidates: Vec<Config> = Vec::new();
        let mut last_weight = f64::INFINITY;
        for e in &feasible {
            let w = e.config.resources().weighted(1.0, 16.0 / 7.0);
            if w < last_weight {
                candidates.push(e.config);
                last_weight = w;
                if candidates.len() == 4 {
                    break;
                }
            }
        }
        if candidates.is_empty() {
            // Nothing meets the stage deadline: drain at maximum
            // throughput (INFless's own objective) rather than stalling at
            // batch 1.
            let best_tput = entries
                .iter()
                .filter(|e| e.config.batch <= qlen)
                .max_by(|a, b| throughput(a).total_cmp(&throughput(b)));
            candidates.push(best_tput.map(|e| e.config).unwrap_or(Config::MIN));
        }
        let planned = candidates.first().map(|c| c.batch);
        Outcome {
            candidates,
            expansions,
            planned_batch: planned,
            ..Outcome::default()
        }
    }

    fn place(&mut self, ctx: &SchedCtx<'_>, config: Config) -> Option<NodeId> {
        // Resource-efficiency placement: best fit, minimising leftover
        // weighted fragmentation (§4.2: INFless and FaST-GShare "do not
        // follow the data locality policy but their resource fragmentation
        // minimization policy").
        place_min_fragmentation(ctx.cluster, config.resources(), 1.0, 16.0 / 7.0)
    }

    fn round_policy(&mut self) -> Option<&mut PolicyStack> {
        Some(&mut self.policy)
    }

    fn adopt_policy(&mut self, spec: &PolicySpec) -> bool {
        match spec.sim_stack() {
            Some(stack) => {
                self.policy = stack;
                true
            }
            // ESG cross-queue packing needs esg-core's search machinery.
            None => false,
        }
    }

    fn stats(&self) -> SchedulerStats {
        SchedulerStats::default().with_policy(self.policy.policy_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{ctx_for, idle_cluster, jobs_with_slack};
    use esg_model::SloClass;
    use esg_sim::SimEnv;

    #[test]
    fn picks_high_throughput_configs() {
        let env = SimEnv::standard(SloClass::Moderate);
        let cluster = idle_cluster(4);
        let jobs = jobs_with_slack(&[800.0; 8]);
        let mut s = InflessScheduler::new();
        let c = ctx_for(&env, &cluster, &jobs, 0, 1, 150.0);
        let out = s.schedule(&c);
        assert!(!out.candidates.is_empty());
        let chosen = out.candidates[0];
        // High-throughput choice: batches several jobs.
        assert!(chosen.batch > 1, "INFless should batch, got {chosen}");
        assert_eq!(out.planned_batch, Some(chosen.batch));
    }

    #[test]
    fn infless_outspends_cheapest_feasible() {
        // INFless picks by throughput, not cost: its choice must cost at
        // least as much per job as the cheapest deadline-meeting config.
        let env = SimEnv::standard(SloClass::Moderate);
        let cluster = idle_cluster(4);
        let jobs = jobs_with_slack(&[900.0; 4]);
        let mut s = InflessScheduler::new();
        let c = ctx_for(&env, &cluster, &jobs, 0, 1, 150.0);
        let out = s.schedule(&c);
        let chosen = out.candidates[0];
        let profile = env.profiles.profile(c.function);
        let target = c.slo_ms * 293.0 / (86.0 + 293.0 + 147.0);
        let cheapest = profile
            .entries_by_cost()
            .find(|e| e.latency_ms <= target && e.config.batch <= 4)
            .expect("some config meets a moderate stage deadline");
        let chosen_cost = profile.find(chosen).expect("grid").per_job_cost_cents;
        assert!(chosen_cost >= cheapest.per_job_cost_cents);
    }

    #[test]
    fn empty_queue_skips() {
        let env = SimEnv::standard(SloClass::Moderate);
        let cluster = idle_cluster(2);
        let mut s = InflessScheduler::new();
        let c = ctx_for(&env, &cluster, &[], 0, 0, 100.0);
        assert!(s.schedule(&c).candidates.is_empty());
    }

    #[test]
    fn placement_minimises_fragmentation() {
        let env = SimEnv::standard(SloClass::Moderate);
        let mut cluster = idle_cluster(3);
        cluster.node_mut(NodeId(1)).free = esg_model::Resources::new(3, 2);
        let jobs = jobs_with_slack(&[500.0]);
        let mut s = InflessScheduler::new();
        let c = ctx_for(&env, &cluster, &jobs, 0, 0, 100.0);
        // A (2,2) task fits node 1 most tightly.
        let node = s.place(&c, Config::new(1, 2, 2)).expect("fits");
        assert_eq!(node, NodeId(1));
    }

    #[test]
    fn impossible_deadline_still_dispatches() {
        // A minimum-only grid cannot meet a strict share of the U2Net
        // stage — the scheduler must still emit a best-effort candidate.
        let env = esg_sim::SimEnv::with_grid(SloClass::Strict, esg_model::ConfigGrid::minimal());
        let cluster = idle_cluster(2);
        let jobs = jobs_with_slack(&[1.0]);
        let mut s = InflessScheduler::new();
        let c = ctx_for(&env, &cluster, &jobs, 2, 2, 1.0);
        let out = s.schedule(&c);
        assert_eq!(out.candidates.len(), 1);
        assert_eq!(out.candidates[0], Config::MIN);
    }
}
