//! The four comparison schedulers of the paper's evaluation (§4.2).
//!
//! * [`InflessScheduler`] — INFless: per-stage enumeration maximising
//!   throughput subject to a statically split stage deadline, placement by
//!   resource-efficiency / fragmentation-minimisation. Relation-blind.
//! * [`FastGShareScheduler`] — FaST-GShare: enumeration against a
//!   throughput requirement with minimal GPU share, placement minimising
//!   GPU fragmentation. Relation-blind.
//! * [`OrionScheduler`] — Orion's best-first search over the joint
//!   configuration vector of *all* stages, targeting P95 latency, with a
//!   cut-off time; the plan is fixed at the first stage's invocation
//!   (no adaptation — the source of Table 4's configuration misses).
//! * [`AquatopeScheduler`] — Aquatope: offline Bayesian-optimisation
//!   training (100 bootstrap samples + 50 rounds × 5 candidates on a
//!   Gaussian-process surrogate with expected improvement), then static
//!   deployment of the learned configurations.
//!
//! The GP/Cholesky/EI machinery Aquatope needs is built from scratch in
//! [`bo`] (no external linear-algebra crates, per the dependency policy).
//!
//! Per §4.2, all baselines run on the same platform services as ESG — GPU
//! sharing, batching, pre-warming — differing only in the scheduling
//! algorithm (and in their published placement policies).

#![warn(missing_docs)]

pub mod aquatope;
pub mod bo;
pub mod fastgshare;
pub mod infless;
pub mod orion;
pub mod slo_split;

#[cfg(test)]
pub(crate) mod test_support;

pub use aquatope::AquatopeScheduler;
pub use fastgshare::FastGShareScheduler;
pub use infless::InflessScheduler;
pub use orion::OrionScheduler;
pub use slo_split::average_service_split;
