//! Bayesian-optimisation substrate for Aquatope.
//!
//! Aquatope "relies on an offline training process, in which the
//! application of interest is profiled in many sample executions based on
//! Bayesian Optimization (BO), through which it builds up a performance
//! model and learns about the statistically good configurations for every
//! stage in the application" (§4.2).
//!
//! The approved dependency list has no linear-algebra crate, so the pieces
//! are built here from scratch and property-tested:
//!
//! * [`matrix`] — dense symmetric matrices with Cholesky factorisation and
//!   triangular solves;
//! * [`gp`] — a Gaussian process with an RBF kernel (fit / posterior
//!   mean+variance / log-marginal-free simple hyperparameters);
//! * [`BoOptimizer`] — the bootstrap + EI-guided sampling loop with the
//!   paper's budget (100 bootstrap samples, 50 rounds, 5 candidates per
//!   round).

pub mod gp;
pub mod matrix;

pub use gp::GaussianProcess;
pub use matrix::Matrix;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Standard normal probability density.
pub fn norm_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution via the Abramowitz–Stegun
/// erf approximation (7.1.26); absolute error < 1.5e-7.
pub fn norm_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz–Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Expected improvement for **minimisation** at a point with posterior
/// `(mean, var)` given the incumbent best value.
pub fn expected_improvement(mean: f64, var: f64, best: f64) -> f64 {
    let sd = var.max(0.0).sqrt();
    if sd < 1e-12 {
        return (best - mean).max(0.0);
    }
    let z = (best - mean) / sd;
    (best - mean) * norm_cdf(z) + sd * norm_pdf(z)
}

/// The Aquatope training loop: minimise a black-box objective over a
/// discrete candidate space using a GP surrogate and EI acquisition.
#[derive(Clone, Copy, Debug)]
pub struct BoOptimizer {
    /// Bootstrap (random) samples before the model kicks in.
    pub bootstrap: usize,
    /// BO rounds after bootstrap.
    pub rounds: usize,
    /// Configurations sampled (evaluated) per round.
    pub per_round: usize,
    /// Random candidates scored by EI each round.
    pub candidate_pool: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BoOptimizer {
    /// The paper's §4.2 budget: 100 bootstrap samples, 50 rounds, 5 samples
    /// per round.
    fn default() -> Self {
        BoOptimizer {
            bootstrap: 100,
            rounds: 50,
            per_round: 5,
            candidate_pool: 200,
            seed: 7,
        }
    }
}

impl BoOptimizer {
    /// A reduced budget for tests.
    pub fn tiny(seed: u64) -> Self {
        BoOptimizer {
            bootstrap: 8,
            rounds: 4,
            per_round: 2,
            candidate_pool: 32,
            seed,
        }
    }

    /// Minimises `objective` over the discrete space described by `dims`
    /// (each entry = number of options on that axis; a point is one index
    /// per axis). Returns `(best_point, best_value)`.
    pub fn minimize(
        &self,
        dims: &[usize],
        mut objective: impl FnMut(&[usize], &mut StdRng) -> f64,
    ) -> (Vec<usize>, f64) {
        assert!(!dims.is_empty() && dims.iter().all(|&d| d > 0));
        let mut rng = StdRng::seed_from_u64(self.seed);
        let normalize = |p: &[usize]| -> Vec<f64> {
            p.iter()
                .zip(dims)
                .map(|(&i, &d)| {
                    if d > 1 {
                        i as f64 / (d - 1) as f64
                    } else {
                        0.0
                    }
                })
                .collect()
        };
        let random_point = |rng: &mut StdRng| -> Vec<usize> {
            dims.iter().map(|&d| rng.random_range(0..d)).collect()
        };

        let mut xs: Vec<Vec<f64>> = Vec::new();
        let mut points: Vec<Vec<usize>> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        let evaluate =
            |p: Vec<usize>,
             rng: &mut StdRng,
             xs: &mut Vec<Vec<f64>>,
             points: &mut Vec<Vec<usize>>,
             ys: &mut Vec<f64>,
             objective: &mut dyn FnMut(&[usize], &mut StdRng) -> f64| {
                let y = objective(&p, rng);
                xs.push(normalize(&p));
                points.push(p);
                ys.push(y);
            };

        for _ in 0..self.bootstrap.max(2) {
            let p = random_point(&mut rng);
            evaluate(p, &mut rng, &mut xs, &mut points, &mut ys, &mut objective);
        }

        for _ in 0..self.rounds {
            let gp = GaussianProcess::fit(&xs, &ys, 0.3, 1e-4);
            let best = ys.iter().copied().fold(f64::INFINITY, f64::min);
            // Score a random pool by EI; evaluate the top per_round.
            let mut scored: Vec<(f64, Vec<usize>)> = (0..self.candidate_pool)
                .map(|_| {
                    let p = random_point(&mut rng);
                    let (m, v) = gp.predict(&normalize(&p));
                    (expected_improvement(m, v, best), p)
                })
                .collect();
            scored.sort_by(|a, b| b.0.total_cmp(&a.0));
            scored.truncate(self.per_round);
            for (_, p) in scored {
                evaluate(p, &mut rng, &mut xs, &mut points, &mut ys, &mut objective);
            }
        }

        let (best_idx, best_y) = ys
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &y)| (i, y))
            .expect("at least bootstrap evaluations");
        (points[best_idx].clone(), best_y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // Abramowitz–Stegun 7.1.26 is accurate to ~1.5e-7 absolute.
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-6);
    }

    #[test]
    fn norm_cdf_symmetry() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-9);
        for z in [0.5, 1.0, 1.96, 3.0] {
            assert!((norm_cdf(z) + norm_cdf(-z) - 1.0).abs() < 1e-9);
        }
        assert!((norm_cdf(1.96) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn ei_properties() {
        // No uncertainty and mean above best: no improvement expected.
        assert_eq!(expected_improvement(5.0, 0.0, 4.0), 0.0);
        // No uncertainty, mean below best: deterministic improvement.
        assert!((expected_improvement(3.0, 0.0, 4.0) - 1.0).abs() < 1e-12);
        // Uncertainty adds hope even at equal mean.
        assert!(expected_improvement(4.0, 1.0, 4.0) > 0.0);
        // EI grows with variance.
        assert!(expected_improvement(4.0, 4.0, 4.0) > expected_improvement(4.0, 1.0, 4.0));
    }

    #[test]
    fn bo_finds_minimum_of_smooth_discrete_function() {
        // f(i, j) = (i-6)^2 + (j-2)^2 over a 10x8 grid; optimum at (6, 2).
        let opt = BoOptimizer {
            bootstrap: 20,
            rounds: 10,
            per_round: 3,
            candidate_pool: 64,
            seed: 3,
        };
        let (p, v) = opt.minimize(&[10, 8], |p, _| {
            let a = p[0] as f64 - 6.0;
            let b = p[1] as f64 - 2.0;
            a * a + b * b
        });
        assert!(v <= 2.0, "best value {v} at {p:?}");
    }

    #[test]
    fn bo_is_deterministic_per_seed() {
        let run = |seed| {
            BoOptimizer {
                seed,
                ..BoOptimizer::tiny(seed)
            }
            .minimize(&[6, 6, 6], |p, _| {
                p.iter().map(|&i| (i as f64 - 3.0).powi(2)).sum()
            })
        };
        assert_eq!(run(1).0, run(1).0);
    }

    #[test]
    fn bo_handles_single_option_dims() {
        let opt = BoOptimizer::tiny(2);
        let (p, _) = opt.minimize(&[1, 4], |p, _| p[1] as f64);
        assert_eq!(p[0], 0);
    }

    #[test]
    fn bo_with_noisy_objective_still_lands_near_optimum() {
        let opt = BoOptimizer {
            bootstrap: 30,
            rounds: 12,
            per_round: 3,
            candidate_pool: 64,
            seed: 9,
        };
        let (_, v) = opt.minimize(&[12], |p, rng| {
            let base = (p[0] as f64 - 8.0).powi(2);
            base + rng.random_range(-0.5..0.5)
        });
        assert!(v < 3.0, "noisy best {v}");
    }
}
