//! Gaussian-process regression with an RBF kernel.
//!
//! `k(x, x') = σ² exp(−‖x−x'‖² / (2ℓ²))`, observation noise `λ`. Fitting
//! solves `(K + λI) α = y` by Cholesky; prediction returns the posterior
//! mean `k*ᵀα` and variance `k(x,x) − ‖L⁻¹k*‖²`.

use super::matrix::Matrix;

/// A fitted Gaussian process.
#[derive(Clone, Debug)]
pub struct GaussianProcess {
    xs: Vec<Vec<f64>>,
    chol: Matrix,
    alpha: Vec<f64>,
    lengthscale: f64,
    signal_var: f64,
    y_mean: f64,
}

impl GaussianProcess {
    /// Fits the GP to `(xs, ys)` with RBF lengthscale `lengthscale` and
    /// observation noise variance `noise`. The signal variance is set to
    /// the sample variance of `ys` (a standard self-scaling choice).
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], lengthscale: f64, noise: f64) -> GaussianProcess {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty(), "GP needs at least one observation");
        assert!(lengthscale > 0.0 && noise >= 0.0);
        let n = xs.len();
        let y_mean = ys.iter().sum::<f64>() / n as f64;
        let centered: Vec<f64> = ys.iter().map(|y| y - y_mean).collect();
        let signal_var = (centered.iter().map(|y| y * y).sum::<f64>() / n as f64).max(1e-6);

        let kernel = |a: &[f64], b: &[f64]| -> f64 {
            let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
            signal_var * (-d2 / (2.0 * lengthscale * lengthscale)).exp()
        };
        let mut k = Matrix::from_fn(n, |i, j| kernel(&xs[i], &xs[j]));
        // Ridge for numerical stability on duplicated points.
        let ridge = noise + 1e-9 * signal_var;
        for i in 0..n {
            k[(i, i)] += ridge;
        }
        let chol = k.cholesky().expect("kernel + ridge is positive definite");
        let tmp = chol.solve_lower(&centered);
        let alpha = chol.solve_lower_transpose(&tmp);
        GaussianProcess {
            xs: xs.to_vec(),
            chol,
            alpha,
            lengthscale,
            signal_var,
            y_mean,
        }
    }

    fn kernel(&self, a: &[f64], b: &[f64]) -> f64 {
        let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        self.signal_var * (-d2 / (2.0 * self.lengthscale * self.lengthscale)).exp()
    }

    /// Posterior `(mean, variance)` at `x`.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        let kstar: Vec<f64> = self.xs.iter().map(|xi| self.kernel(xi, x)).collect();
        let mean = self.y_mean
            + kstar
                .iter()
                .zip(&self.alpha)
                .map(|(k, a)| k * a)
                .sum::<f64>();
        let v = self.chol.solve_lower(&kstar);
        let var = self.kernel(x, x) - v.iter().map(|x| x * x).sum::<f64>();
        (mean, var.max(0.0))
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True when the GP holds no observations (cannot occur via `fit`).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_1d(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect()
    }

    #[test]
    fn interpolates_training_points_with_low_noise() {
        let xs = grid_1d(6);
        let ys: Vec<f64> = xs.iter().map(|x| (3.0 * x[0]).sin()).collect();
        let gp = GaussianProcess::fit(&xs, &ys, 0.3, 1e-8);
        for (x, y) in xs.iter().zip(&ys) {
            let (m, v) = gp.predict(x);
            assert!((m - y).abs() < 1e-3, "mean {m} vs {y}");
            assert!(v < 1e-3, "variance {v} at a training point");
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let xs = vec![vec![0.0], vec![0.1]];
        let ys = vec![1.0, 1.1];
        let gp = GaussianProcess::fit(&xs, &ys, 0.1, 1e-6);
        let (_, v_near) = gp.predict(&[0.05]);
        let (_, v_far) = gp.predict(&[1.0]);
        assert!(v_far > v_near);
        // Far from data the mean reverts towards the training mean.
        let (m_far, _) = gp.predict(&[50.0]);
        assert!((m_far - 1.05).abs() < 1e-6);
    }

    #[test]
    fn smooth_interpolation_between_points() {
        let xs = grid_1d(11);
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[0]).collect();
        let gp = GaussianProcess::fit(&xs, &ys, 0.25, 1e-6);
        let (m, _) = gp.predict(&[0.55]);
        assert!((m - 0.3025).abs() < 0.02, "quadratic interp: {m}");
    }

    #[test]
    fn duplicate_points_do_not_break_factorisation() {
        let xs = vec![vec![0.5], vec![0.5], vec![0.5]];
        let ys = vec![1.0, 1.2, 0.8];
        let gp = GaussianProcess::fit(&xs, &ys, 0.3, 1e-4);
        let (m, _) = gp.predict(&[0.5]);
        assert!((m - 1.0).abs() < 0.1);
    }

    #[test]
    fn multidimensional_inputs() {
        let xs: Vec<Vec<f64>> = (0..16)
            .map(|i| vec![(i % 4) as f64 / 3.0, (i / 4) as f64 / 3.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] + 2.0 * x[1]).collect();
        let gp = GaussianProcess::fit(&xs, &ys, 0.5, 1e-6);
        let (m, _) = gp.predict(&[0.5, 0.5]);
        assert!((m - 1.5).abs() < 0.05, "{m}");
        assert_eq!(gp.len(), 16);
    }
}
