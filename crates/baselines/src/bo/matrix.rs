//! Minimal dense matrix with Cholesky factorisation.
//!
//! Just enough linear algebra for a Gaussian process: symmetric positive
//! definite `A = L·Lᵀ`, plus forward/backward triangular solves.

/// A dense square matrix in row-major order.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an `n×n` zero matrix.
    pub fn zeros(n: usize) -> Matrix {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Builds from a closure over `(row, col)`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut m = Matrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Cholesky factorisation: returns lower-triangular `L` with
    /// `L·Lᵀ = self`, or `None` when the matrix is not positive definite.
    pub fn cholesky(&self) -> Option<Matrix> {
        let n = self.n;
        let mut l = Matrix::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return None;
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Some(l)
    }

    /// Solves `L·x = b` for lower-triangular `self`.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        assert_eq!(b.len(), n);
        let mut x = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self[(i, k)] * x[k];
            }
            x[i] = sum / self[(i, i)];
        }
        x
    }

    /// Solves `Lᵀ·x = b` for lower-triangular `self`.
    pub fn solve_lower_transpose(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        assert_eq!(b.len(), n);
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = b[i];
            for k in (i + 1)..n {
                sum -= self[(k, i)] * x[k];
            }
            x[i] = sum / self[(i, i)];
        }
        x
    }

    /// Multiplies `self · v`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.n);
        (0..self.n)
            .map(|i| (0..self.n).map(|j| self[(i, j)] * v[j]).sum())
            .collect()
    }

    /// `self · selfᵀ` (used by tests to verify the factorisation).
    pub fn mul_transpose(&self) -> Matrix {
        let n = self.n;
        Matrix::from_fn(n, |i, j| (0..n).map(|k| self[(i, k)] * self[(j, k)]).sum())
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.n + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_of_known_matrix() {
        // A = [[4, 2], [2, 3]] -> L = [[2, 0], [1, sqrt(2)]]
        let a = Matrix::from_fn(2, |i, j| [[4.0, 2.0], [2.0, 3.0]][i][j]);
        let l = a.cholesky().expect("SPD");
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 2.0f64.sqrt()).abs() < 1e-12);
        assert!((l[(0, 1)]).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_non_spd() {
        let a = Matrix::from_fn(2, |i, j| [[1.0, 2.0], [2.0, 1.0]][i][j]);
        assert!(a.cholesky().is_none());
    }

    #[test]
    fn reconstruction_roundtrip() {
        // Random-ish SPD: B·Bᵀ + n·I.
        let n = 6;
        let b = Matrix::from_fn(n, |i, j| ((i * 7 + j * 3) % 11) as f64 / 11.0);
        let mut a = b.mul_transpose();
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let l = a.cholesky().expect("SPD by construction");
        let back = l.mul_transpose();
        for i in 0..n {
            for j in 0..n {
                assert!(
                    (a[(i, j)] - back[(i, j)]).abs() < 1e-9,
                    "({i},{j}): {} vs {}",
                    a[(i, j)],
                    back[(i, j)]
                );
            }
        }
    }

    #[test]
    fn triangular_solves_invert() {
        let n = 5;
        let b = Matrix::from_fn(n, |i, j| ((i * 5 + j * 2) % 7) as f64 / 7.0);
        let mut a = b.mul_transpose();
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let l = a.cholesky().expect("SPD");
        let rhs: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 2.0).collect();
        // Solve A x = rhs via two triangular solves.
        let y = l.solve_lower(&rhs);
        let x = l.solve_lower_transpose(&y);
        let back = a.mul_vec(&x);
        for (r, b2) in rhs.iter().zip(&back) {
            assert!((r - b2).abs() < 1e-9, "{r} vs {b2}");
        }
    }

    #[test]
    fn indexing() {
        let mut m = Matrix::zeros(3);
        m[(1, 2)] = 5.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m[(2, 1)], 0.0);
        assert_eq!(m.n(), 3);
    }
}
