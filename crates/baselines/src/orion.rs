//! Orion (Mahgoub et al., OSDI '22) extended with GPU sharing (§4.2).
//!
//! "Its scheduling uses best-first search, which creates a priority queue
//! … we expand its state definition to a vector of (batch size, #vCPUs,
//! and #vGPUs), one for each stage. The algorithm examines possible
//! states, with each new state increasing the current state in one
//! dimension of the configuration vector, and the start state S0 has the
//! minimum values for every stage function. The scheduling method decides
//! the schedule for all the stages of an application at the invocation of
//! the first stage; no dynamic adaptation between stages. As in the
//! original work, P95 latency is used as the search goal. The
//! configuration with the closest latency to the SLO is returned when the
//! search exceeds a cut-off time (e.g., 100ms) before reaching the goal."

use esg_model::{AppSpec, Config, InvocationId, NodeId};
use esg_profile::latency_ms;
use esg_sim::{
    place_locality_first, Capabilities, Outcome, OverheadModel, PolicySpec, PolicyStack, SchedCtx,
    Scheduler, SchedulerEvent, SchedulerStats,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// One joint state: per-stage indices into the grid's option lists.
type State = Vec<[u8; 3]>;

/// The Orion baseline scheduler.
#[derive(Debug)]
pub struct OrionScheduler {
    cutoff_ms: f64,
    /// Expansion budget derived from the cut-off via the shared
    /// effort→time calibration.
    budget: u64,
    /// Plans fixed at stage-0 dispatch, per invocation.
    plans: HashMap<InvocationId, Vec<Config>>,
    /// The plan computed by the latest stage-0 `schedule` call, bound to
    /// invocations when the platform dispatches.
    pending: Option<Vec<Config>>,
    /// Memoised per-app search results. The search inputs (profiles, SLO)
    /// are static, so every stage-0 decision reproduces the same plan; the
    /// cache avoids recomputing it while the reported `expansions` still
    /// charge the full search to every decision, as the paper measures
    /// (Fig. 9 counts Orion's search time per scheduling decision).
    cache: HashMap<u32, (Vec<Config>, u64)>,
    /// Round-policy stack driving `schedule_round` (classic by default).
    policy: PolicyStack,
}

impl Default for OrionScheduler {
    fn default() -> Self {
        OrionScheduler::new(100.0)
    }
}

impl OrionScheduler {
    /// Creates Orion with a search cut-off in (modelled) milliseconds; the
    /// paper's default is 100 ms, and Fig. 9 sweeps it.
    pub fn new(cutoff_ms: f64) -> OrionScheduler {
        let per_exp = OverheadModel::default().us_per_expansion;
        OrionScheduler {
            cutoff_ms,
            budget: ((cutoff_ms * 1000.0 / per_exp).max(1.0)) as u64,
            plans: HashMap::new(),
            pending: None,
            cache: HashMap::new(),
            policy: PolicyStack::classic(),
        }
    }

    /// Replaces the round-policy stack (see `esg_sim::PolicyStack`).
    pub fn with_policy(mut self, policy: PolicyStack) -> Self {
        self.policy = policy;
        self
    }

    fn plan_cached(&mut self, ctx: &SchedCtx<'_>, app: &AppSpec) -> (Vec<Config>, u64) {
        if let Some(hit) = self.cache.get(&ctx.key.app.0) {
            return hit.clone();
        }
        let result = self.plan_app(ctx, app);
        self.cache.insert(ctx.key.app.0, result.clone());
        result
    }

    /// The configured cut-off.
    pub fn cutoff_ms(&self) -> f64 {
        self.cutoff_ms
    }

    /// Best-first search over the joint configuration vector.
    ///
    /// States are ordered by total per-job cost (cheapest first, the
    /// resource-frugal direction); the goal is an estimated end-to-end P95
    /// within the SLO. Returns `(plan, expansions)`.
    fn plan_app(&self, ctx: &SchedCtx<'_>, app: &AppSpec) -> (Vec<Config>, u64) {
        let grid = ctx.profiles.grid();
        let dims = [grid.batches.len(), grid.vcpus.len(), grid.vgpus.len()];
        let stages = app.num_stages();
        let p95 = ctx.noise.p95_factor();
        let slo = ctx.slo_ms;

        let config_of = |s: &[u8; 3]| -> Config {
            Config::new(
                grid.batches[s[0] as usize],
                grid.vcpus[s[1] as usize],
                grid.vgpus[s[2] as usize],
            )
        };
        let evaluate = |state: &State| -> (f64, f64) {
            let mut lat = 0.0;
            let mut cost = 0.0;
            for (i, s) in state.iter().enumerate() {
                let cfg = config_of(s);
                let spec = ctx.catalog.get(app.nodes[i]);
                let l = latency_ms(spec, cfg);
                lat += l;
                cost += ctx.price.per_job_cost_cents(cfg, l);
            }
            (lat * p95, cost)
        };

        #[derive(PartialEq)]
        struct Node(f64, State);
        impl Eq for Node {}
        impl PartialOrd for Node {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Node {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0
                    .total_cmp(&other.0)
                    .then_with(|| self.1.cmp(&other.1))
            }
        }

        // Best-first guided by P95 distance to the SLO ("P95 latency is
        // used as the search goal"): the frontier marches towards
        // SLO-adjacent states — which is where the cheap large-batch
        // right-sizings live — instead of wandering the cheap-but-slow
        // corner of the joint space.
        let start: State = vec![[0, 0, 0]; stages];
        let mut heap: BinaryHeap<Reverse<Node>> = BinaryHeap::new();
        let mut visited: HashSet<State> = HashSet::new();
        let (start_lat, start_cost) = evaluate(&start);
        heap.push(Reverse(Node((start_lat - slo).abs(), start.clone())));
        visited.insert(start);

        let mut expansions: u64 = 0;
        let mut closest: (f64, State) = (f64::INFINITY, vec![[0, 0, 0]; stages]);
        // Cheapest goal found so far. Per-job cost is not monotone along
        // expansion (bigger batches are cheaper), so the search keeps
        // going until the cut-off looking for cheaper SLO-meeting states —
        // this is what drives Orion's plans towards large batches and the
        // Table-4 configuration misses.
        let mut best_goal: Option<(f64, State)> = None;

        while let Some(Reverse(Node(_, state))) = heap.pop() {
            let (lat, cost) = evaluate(&state);
            let gap = (lat - slo).abs();
            if gap < closest.0 {
                closest = (gap, state.clone());
            }
            if lat <= slo && best_goal.as_ref().is_none_or(|(c, _)| cost < *c) {
                best_goal = Some((cost, state.clone()));
            }
            if expansions >= self.budget {
                break; // cut-off
            }
            'expand: for stage in 0..stages {
                for dim in 0..3 {
                    if (state[stage][dim] as usize) + 1 >= dims[dim] {
                        continue;
                    }
                    let mut next = state.clone();
                    next[stage][dim] += 1;
                    expansions += 1;
                    if visited.insert(next.clone()) {
                        let (lat, _) = evaluate(&next);
                        heap.push(Reverse(Node((lat - slo).abs(), next)));
                    }
                    if expansions >= self.budget {
                        break 'expand;
                    }
                }
            }
        }
        let _ = (start_lat, start_cost);
        let chosen = match best_goal {
            Some((_, state)) => state,
            None => closest.1,
        };
        let plan = chosen.iter().map(config_of).collect();
        // A cut-off search consumes its whole budget on the controller
        // even when cheap goals were found early (Fig. 9).
        let charged = if expansions >= self.budget {
            self.budget
        } else {
            expansions.max(1)
        };
        (plan, charged)
    }
}

impl Scheduler for OrionScheduler {
    fn name(&self) -> &'static str {
        "Orion"
    }

    fn capabilities(&self) -> Capabilities {
        // Table 1 row: GPU sharing ×, inter-function relation √,
        // adaptive ×, data locality ×, pre-warming √.
        Capabilities {
            gpu_sharing: false,
            inter_function_relation: true,
            adaptive: false,
            data_locality: false,
            pre_warming: true,
        }
    }

    fn schedule(&mut self, ctx: &SchedCtx<'_>) -> Outcome {
        if ctx.jobs.is_empty() {
            return Outcome::skip();
        }
        let app = ctx.app_spec();
        if ctx.key.stage == 0 {
            // Plan the whole workflow at the invocation of the first stage.
            let (plan, expansions) = self.plan_cached(ctx, app);
            let config = plan[0];
            self.pending = Some(plan);
            return Outcome {
                candidates: vec![config],
                expansions,
                planned_batch: Some(config.batch),
                ..Outcome::default()
            };
        }
        // Later stages replay the stage-0 plan of the oldest invocation —
        // no adaptation (§4.2), which is where Table 4's misses come from.
        let planned = ctx
            .jobs
            .first()
            .and_then(|j| self.plans.get(&j.invocation))
            .map(|plan| plan[ctx.key.stage]);
        match planned {
            Some(config) => Outcome {
                candidates: vec![config],
                expansions: 1,
                planned_batch: Some(config.batch),
                ..Outcome::default()
            },
            None => {
                // The invocation predates this scheduler (or the plan was
                // evicted): re-plan once.
                let (plan, expansions) = self.plan_cached(ctx, app);
                let config = plan[ctx.key.stage];
                self.pending = Some(plan);
                Outcome {
                    candidates: vec![config],
                    expansions,
                    planned_batch: Some(config.batch),
                    ..Outcome::default()
                }
            }
        }
    }

    fn place(&mut self, ctx: &SchedCtx<'_>, config: Config) -> Option<NodeId> {
        let preferred = ctx
            .jobs
            .iter()
            .take(config.batch as usize)
            .find_map(|j| j.pred_node);
        place_locality_first(ctx, config.resources(), preferred)
    }

    fn on_event(&mut self, event: &SchedulerEvent<'_>) {
        let SchedulerEvent::Dispatched {
            key, invocations, ..
        } = *event
        else {
            return;
        };
        if key.stage == 0 {
            if let Some(plan) = self.pending.take() {
                for &inv in invocations {
                    self.plans.insert(inv, plan.clone());
                }
            }
        } else {
            // Drop plans after the final stage to bound memory.
            for &inv in invocations {
                if let Some(plan) = self.plans.get(&inv) {
                    if key.stage + 1 >= plan.len() {
                        self.plans.remove(&inv);
                    }
                }
            }
        }
    }

    fn round_policy(&mut self) -> Option<&mut PolicyStack> {
        Some(&mut self.policy)
    }

    fn adopt_policy(&mut self, spec: &PolicySpec) -> bool {
        match spec.sim_stack() {
            Some(stack) => {
                self.policy = stack;
                true
            }
            // ESG cross-queue packing needs esg-core's search machinery.
            None => false,
        }
    }

    fn stats(&self) -> SchedulerStats {
        SchedulerStats::default().with_policy(self.policy.policy_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{ctx_for, idle_cluster, jobs_with_slack};
    use esg_model::SloClass;
    use esg_sim::SimEnv;

    #[test]
    fn stage0_plans_whole_workflow() {
        // Small grid so the P95 goal is reachable within the cut-off (on
        // the full grid the joint space is ~11M states and Orion usually
        // hits the cut-off first — exactly the paper's Fig. 9 story).
        let env = esg_sim::SimEnv::with_grid(
            SloClass::Moderate,
            esg_model::ConfigGrid::new(vec![1, 2, 4], vec![1, 2, 4, 8], vec![1, 2]),
        );
        let cluster = idle_cluster(4);
        let jobs = jobs_with_slack(&[500.0, 480.0]);
        let mut s = OrionScheduler::default();
        let c = ctx_for(&env, &cluster, &jobs, 0, 0, 20.0);
        let out = s.schedule(&c);
        assert_eq!(out.candidates.len(), 1);
        assert!(out.expansions >= 1);
        let pending = s.pending.as_ref().expect("plan cached");
        assert_eq!(pending.len(), 3);
        // Plan must satisfy the P95 goal under a moderate SLO.
        let p95 = env.noise.p95_factor();
        let total: f64 = pending
            .iter()
            .zip(&env.apps[0].nodes)
            .map(|(cfg, &f)| latency_ms(env.catalog.get(f), *cfg) * p95)
            .sum();
        assert!(total <= c.slo_ms + 1e-9, "{total} > {}", c.slo_ms);
    }

    #[test]
    fn full_grid_hits_cutoff_and_returns_closest() {
        // On the default grid the cheap-first frontier rarely reaches the
        // expensive fast region before the cut-off; Orion then returns the
        // state with latency closest to the SLO (§4.2).
        let env = SimEnv::standard(SloClass::Moderate);
        let cluster = idle_cluster(4);
        let jobs = jobs_with_slack(&[500.0]);
        let mut s = OrionScheduler::new(5.0); // tiny cut-off
        let c = ctx_for(&env, &cluster, &jobs, 0, 0, 20.0);
        let out = s.schedule(&c);
        assert_eq!(out.candidates.len(), 1);
        assert!(out.expansions <= s.budget + 1);
        // Same inputs -> memoised plan, same expansions charged again.
        let mut s2 = OrionScheduler::new(5.0);
        let out2 = s2.schedule(&c);
        assert_eq!(out.candidates, out2.candidates);
        assert_eq!(out.expansions, out2.expansions);
    }

    #[test]
    fn plans_bound_to_invocations_and_replayed() {
        let env = SimEnv::standard(SloClass::Moderate);
        let cluster = idle_cluster(4);
        let jobs = jobs_with_slack(&[500.0, 490.0]);
        let mut s = OrionScheduler::default();
        let c0 = ctx_for(&env, &cluster, &jobs, 0, 0, 20.0);
        let out0 = s.schedule(&c0);
        let invs: Vec<InvocationId> = jobs.iter().map(|j| j.invocation).collect();
        s.on_event(&SchedulerEvent::Dispatched {
            key: c0.key,
            invocations: &invs,
            config: out0.candidates[0],
            node: NodeId(0),
            now_ms: 20.0,
        });
        assert_eq!(s.plans.len(), 2);

        // Stage 1 replays the plan for the oldest invocation.
        let c1 = ctx_for(&env, &cluster, &jobs, 0, 1, 250.0);
        let out1 = s.schedule(&c1);
        assert_eq!(out1.expansions, 1, "no re-search at later stages");
        assert_eq!(
            out1.candidates[0], s.plans[&jobs[0].invocation][1],
            "stage-1 config must come from the stage-0 plan"
        );
        // Plans are dropped after the last stage dispatch.
        let c2 = ctx_for(&env, &cluster, &jobs, 0, 2, 400.0);
        let out2 = s.schedule(&c2);
        s.on_event(&SchedulerEvent::Dispatched {
            key: c2.key,
            invocations: &invs,
            config: out2.candidates[0],
            node: NodeId(0),
            now_ms: 400.0,
        });
        assert!(s.plans.is_empty());
    }

    #[test]
    fn cutoff_limits_expansions() {
        let env = SimEnv::standard(SloClass::Strict);
        let cluster = idle_cluster(4);
        let jobs = jobs_with_slack(&[100.0]);
        // 1 ms cut-off -> ~2.3k expansions max.
        let mut tiny = OrionScheduler::new(1.0);
        // Long pipeline + strict SLO makes the goal hard to reach.
        let c = ctx_for(&env, &cluster, &jobs, 3, 0, 5.0);
        let out = tiny.schedule(&c);
        assert!(
            out.expansions <= tiny.budget + 1,
            "{} > {}",
            out.expansions,
            tiny.budget
        );
        assert_eq!(out.candidates.len(), 1, "closest state returned at cutoff");
    }

    #[test]
    fn bigger_cutoff_never_worse_latency_goal() {
        let env = SimEnv::standard(SloClass::Strict);
        let cluster = idle_cluster(4);
        let jobs = jobs_with_slack(&[100.0]);
        let mut small = OrionScheduler::new(0.5);
        let mut large = OrionScheduler::new(500.0);
        let c = ctx_for(&env, &cluster, &jobs, 3, 0, 5.0);
        let eval = |plan: &[Config]| -> f64 {
            plan.iter()
                .zip(&env.apps[3].nodes)
                .map(|(cfg, &f)| latency_ms(env.catalog.get(f), *cfg))
                .sum::<f64>()
                * env.noise.p95_factor()
        };
        small.schedule(&c);
        large.schedule(&c);
        let lat_small = eval(small.pending.as_ref().expect("plan"));
        let lat_large = eval(large.pending.as_ref().expect("plan"));
        // The larger budget gets at least as close to the SLO target.
        assert!(
            (lat_large - c.slo_ms).abs() <= (lat_small - c.slo_ms).abs() + 1e-9,
            "large {lat_large}, small {lat_small}, slo {}",
            c.slo_ms
        );
    }

    #[test]
    fn miss_accounting_setup() {
        // Orion reports planned_batch so the platform can count Table-4
        // configuration misses when the plan's batch exceeds the queue.
        let env = SimEnv::standard(SloClass::Relaxed);
        let cluster = idle_cluster(4);
        let jobs = jobs_with_slack(&[2000.0]);
        let mut s = OrionScheduler::default();
        let c = ctx_for(&env, &cluster, &jobs, 0, 0, 10.0);
        let out = s.schedule(&c);
        assert_eq!(out.planned_batch, Some(out.candidates[0].batch));
    }
}
