//! Average-service-time SLO distribution.
//!
//! "INFless provides no method for distributing an application's SLO to
//! its functions. Our experiment follows a prior work \[GrandSLAm\] to do
//! the distribution based on the average service times of the functions"
//! (§4.2). The same split is applied to FaST-GShare.
//!
//! Each stage receives `SLO × t_i / Σ_j t_j`, with `t` the minimum-
//! configuration execution time. The split is *static*: late stages do not
//! inherit slack or delay from early stages (§5.2 explains how this hurts
//! long pipelines).

use esg_model::{AppSpec, Catalog};

/// Per-stage shares of the end-to-end SLO, proportional to minimum-config
/// service times. Sums to 1.
pub fn average_service_split(app: &AppSpec, catalog: &Catalog) -> Vec<f64> {
    let times: Vec<f64> = app.nodes.iter().map(|&f| catalog.get(f).exec_ms).collect();
    let total: f64 = times.iter().sum();
    assert!(total > 0.0, "service times must be positive");
    times.into_iter().map(|t| t / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use esg_model::{standard_apps, standard_catalog};

    #[test]
    fn shares_sum_to_one() {
        let catalog = standard_catalog();
        for app in standard_apps() {
            let s = average_service_split(&app, &catalog);
            assert_eq!(s.len(), app.num_stages());
            assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(s.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn proportional_to_service_time() {
        let catalog = standard_catalog();
        let apps = standard_apps();
        // Image classification: SR 86, Seg 293, Cls 147.
        let s = average_service_split(&apps[0], &catalog);
        let total = 86.0 + 293.0 + 147.0;
        assert!((s[0] - 86.0 / total).abs() < 1e-12);
        assert!((s[1] - 293.0 / total).abs() < 1e-12);
        assert!((s[2] - 147.0 / total).abs() < 1e-12);
    }
}
