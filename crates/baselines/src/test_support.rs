//! Shared fixtures for baseline scheduler tests (test builds only).

use esg_model::{AppId, InvocationId, NodeId, Resources};
use esg_sim::{ClusterState, JobView, NodeView, QueueKey, SchedCtx, SimEnv};

/// An idle cluster of `n` standard (Table-2 baseline class) nodes.
pub fn idle_cluster(n: usize) -> ClusterState {
    ClusterState::from_views(
        (0..n as u32)
            .map(|i| NodeView::idle(NodeId(i), Resources::new(16, 7)))
            .collect(),
    )
}

/// Jobs with the given slacks, all ready and arriving slightly in the past.
pub fn jobs_with_slack(slacks: &[f64]) -> Vec<JobView> {
    slacks
        .iter()
        .enumerate()
        .map(|(i, &s)| JobView {
            invocation: InvocationId(i as u64),
            ready_at_ms: 10.0 + i as f64,
            invocation_arrival_ms: 5.0,
            slack_ms: s,
            pred_node: None,
        })
        .collect()
}

/// Builds a scheduling context for `(app, stage)` at `now_ms`.
pub fn ctx_for<'a>(
    env: &'a SimEnv,
    cluster: &'a ClusterState,
    jobs: &'a [JobView],
    app: u32,
    stage: usize,
    now_ms: f64,
) -> SchedCtx<'a> {
    let key = QueueKey {
        app: AppId(app),
        stage,
    };
    SchedCtx {
        now_ms,
        key,
        jobs,
        function: env.apps[app as usize].nodes[stage],
        slo_ms: env.slo_ms(AppId(app)),
        base_latency_ms: env.base_latency_ms(AppId(app)),
        queue_interval_ms: None,
        cluster,
        profiles: &env.profiles,
        apps: &env.apps,
        catalog: &env.catalog,
        price: &env.price,
        transfer: &env.transfer,
        noise: &env.noise,
    }
}
