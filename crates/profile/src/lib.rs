//! Performance-profile substrate.
//!
//! The paper's evaluation drives its emulation with per-configuration
//! performance profiles measured on an A100 testbed, plus Gaussian noise
//! (§4: "The emulations are based on actual performance of the serverless
//! functions measured on actual machines in various configurations … the
//! emulations add Gaussian noises to the performance").
//!
//! This crate reproduces that substrate analytically:
//!
//! * [`latency::latency_ms`] — the scaling law extrapolating each
//!   function's Table-3 base time to any `(batch, vcpus, vgpus)`
//!   configuration (sub-linear GPU batching, Amdahl-style vCPU scaling,
//!   data-parallel vGPU splitting with fan-out overhead);
//! * [`table::ProfileTable`] — precomputed per-function profiles over a
//!   configuration grid, with the sorted views and per-stage bounds the
//!   schedulers need (ESG's dual-blade pruning reads min-time / min-cost /
//!   cost-of-fastest from here);
//! * [`noise::NoiseModel`] — multiplicative truncated-Gaussian noise
//!   applied to every simulated execution;
//! * [`transfer::TransferModel`] — local-vs-remote data movement cost
//!   between pipeline stages (the data-locality dimension of Table 1).

#![warn(missing_docs)]

pub mod latency;
pub mod noise;
pub mod table;
pub mod transfer;

pub use latency::{latency_breakdown, latency_ms, per_job_latency_ms};
pub use noise::NoiseModel;
pub use table::{FunctionProfile, ProfileEntry, ProfileTable};
pub use transfer::TransferModel;
