//! The latency scaling law.
//!
//! Table 3 gives each function's execution time at the minimum
//! configuration `(batch=1, 1 vCPU, 1 vGPU)`. The model splits that time
//! into a CPU part (pre/post-processing) and a GPU part (kernel time) and
//! scales each with the configuration:
//!
//! ```text
//! t_cpu(b, c) = φ·T · b · (s + (1 − s)/c)            (Amdahl over vCPUs,
//!                                                      linear in batch)
//! t_gpu(b, g) = (1−φ)·T · (1 + α·(⌈b/g⌉ − 1)) + δ·(g − 1)
//!                                                     (sub-linear batching
//!                                                      per vGPU micro-batch,
//!                                                      fan-out overhead)
//! t = t_cpu + t_gpu
//! ```
//!
//! with `T = exec_ms`, `φ = cpu_fraction`, `s = cpu_serial_fraction`,
//! `α = batch_alpha`, `δ = vgpu_overhead_ms` from the function spec. The
//! law reproduces the qualitative behaviour the ESG search navigates: more
//! resources buy speed at a price; batching amortises GPU time across jobs;
//! extra vGPUs only help once the batch is large enough to split.

use esg_model::{Config, FunctionSpec};

/// Mean task latency (ms) of `spec` under `cfg` — the whole batch, not per
/// job.
#[inline]
pub fn latency_ms(spec: &FunctionSpec, cfg: Config) -> f64 {
    let (cpu, gpu) = latency_breakdown(spec, cfg);
    cpu + gpu
}

/// The `(cpu_ms, gpu_ms)` components of [`latency_ms`].
pub fn latency_breakdown(spec: &FunctionSpec, cfg: Config) -> (f64, f64) {
    let t_cpu1 = spec.cpu_fraction * spec.exec_ms;
    let t_gpu1 = (1.0 - spec.cpu_fraction) * spec.exec_ms;
    let b = cfg.batch as f64;
    let c = cfg.vcpus as f64;
    let s = spec.cpu_serial_fraction;

    let cpu = t_cpu1 * b * (s + (1.0 - s) / c);

    let micro_batch = cfg.batch.div_ceil(cfg.vgpus);
    let gpu = t_gpu1 * (1.0 + spec.batch_alpha * (micro_batch as f64 - 1.0))
        + spec.vgpu_overhead_ms * (cfg.vgpus as f64 - 1.0);
    (cpu, gpu)
}

/// Mean per-job latency (ms): task latency divided by batch — the paper's
/// throughput view.
#[inline]
pub fn per_job_latency_ms(spec: &FunctionSpec, cfg: Config) -> f64 {
    latency_ms(spec, cfg) / cfg.batch as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use esg_model::{standard_catalog, Config};

    fn spec() -> FunctionSpec {
        standard_catalog()
            .get(esg_model::catalog::functions::DEBLUR)
            .clone()
    }

    #[test]
    fn min_config_reproduces_table3_time() {
        for (_, f) in standard_catalog().iter() {
            let t = latency_ms(f, Config::MIN);
            assert!(
                (t - f.exec_ms).abs() < 1e-9,
                "{}: {t} != {}",
                f.name,
                f.exec_ms
            );
        }
    }

    #[test]
    fn more_vcpus_never_slower() {
        let f = spec();
        for b in [1u32, 4, 8] {
            let mut prev = f64::INFINITY;
            for c in 1..=16 {
                let t = latency_ms(&f, Config::new(b, c, 1));
                assert!(t <= prev + 1e-9, "b={b} c={c}: {t} > {prev}");
                prev = t;
            }
        }
    }

    #[test]
    fn vcpu_scaling_saturates_at_serial_fraction() {
        let f = spec();
        let t1 = latency_ms(&f, Config::new(1, 1, 1));
        let t_inf = latency_ms(&f, Config::new(1, 10_000, 1));
        // CPU part can shrink to its serial fraction, no further.
        let floor =
            f.exec_ms * (1.0 - f.cpu_fraction) + f.exec_ms * f.cpu_fraction * f.cpu_serial_fraction;
        assert!(t_inf >= floor - 1e-6);
        assert!(t_inf < t1);
    }

    #[test]
    fn batching_improves_per_job_latency() {
        let f = spec();
        let per1 = per_job_latency_ms(&f, Config::new(1, 2, 1));
        let per8 = per_job_latency_ms(&f, Config::new(8, 2, 1));
        assert!(
            per8 < per1,
            "batching must amortise GPU time: {per8} !< {per1}"
        );
        // But the task as a whole takes longer.
        assert!(latency_ms(&f, Config::new(8, 2, 1)) > latency_ms(&f, Config::new(1, 2, 1)));
    }

    #[test]
    fn vgpus_split_large_batches() {
        let f = spec();
        // With batch 8, going from 1 to 4 vGPUs shrinks the micro-batch 8->2.
        let t_g1 = latency_ms(&f, Config::new(8, 2, 1));
        let t_g4 = latency_ms(&f, Config::new(8, 2, 4));
        assert!(t_g4 < t_g1);
        // With batch 1 extra vGPUs only add fan-out overhead.
        let t_b1_g1 = latency_ms(&f, Config::new(1, 2, 1));
        let t_b1_g4 = latency_ms(&f, Config::new(1, 2, 4));
        assert!(t_b1_g4 > t_b1_g1);
        assert!((t_b1_g4 - t_b1_g1 - 3.0 * f.vgpu_overhead_ms).abs() < 1e-9);
    }

    #[test]
    fn micro_batch_rounding_is_ceiling() {
        let f = spec();
        // batch 5 over 2 vGPUs -> micro-batch 3, same as batch 6 over 2.
        let t5 = latency_ms(&f, Config::new(5, 1, 2));
        let t6 = latency_ms(&f, Config::new(6, 1, 2));
        let gpu5 = latency_breakdown(&f, Config::new(5, 1, 2)).1;
        let gpu6 = latency_breakdown(&f, Config::new(6, 1, 2)).1;
        assert!((gpu5 - gpu6).abs() < 1e-9);
        assert!(t5 < t6); // CPU part still grows with batch
    }

    #[test]
    fn breakdown_sums_to_total() {
        let f = spec();
        let cfg = Config::new(4, 3, 2);
        let (c, g) = latency_breakdown(&f, cfg);
        assert!((c + g - latency_ms(&f, cfg)).abs() < 1e-12);
        assert!(c > 0.0 && g > 0.0);
    }

    #[test]
    fn speed_cost_tension_exists() {
        // The fastest configuration must cost more than the cheapest one:
        // this tension is the premise of the ESG_1Q search (§3.3).
        let f = spec();
        let price = esg_model::PriceModel::default();
        let grid = esg_model::ConfigGrid::default();
        let mut best_lat = (f64::INFINITY, Config::MIN);
        let mut best_cost = (f64::INFINITY, Config::MIN);
        for cfg in grid.iter() {
            let t = per_job_latency_ms(&f, cfg);
            let cost = price.per_job_cost_cents(cfg, latency_ms(&f, cfg));
            if t < best_lat.0 {
                best_lat = (t, cfg);
            }
            if cost < best_cost.0 {
                best_cost = (cost, cfg);
            }
        }
        assert_ne!(best_lat.1, best_cost.1);
        let fast_cost = price.per_job_cost_cents(best_lat.1, latency_ms(&f, best_lat.1));
        assert!(fast_cost > best_cost.0);
    }
}
