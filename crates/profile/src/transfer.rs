//! Inter-stage data transfer model.
//!
//! ESG's locality-sensitive dispatch (§3.4) exists because "communications
//! on the same node can use local file systems rather than remote storage".
//! The model charges a base latency plus a per-megabyte rate, with separate
//! local (same node) and remote (cross node, via remote storage) tariffs.
//! A batched task moves one input per job, so transfer time scales with the
//! batch.

/// Data movement cost model between pipeline stages.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransferModel {
    /// Fixed latency for a local (same-node, filesystem) hand-off, ms.
    pub local_base_ms: f64,
    /// Per-MB latency for a local hand-off, ms.
    pub local_ms_per_mb: f64,
    /// Fixed latency for a remote (cross-node, remote storage) hand-off, ms.
    pub remote_base_ms: f64,
    /// Per-MB latency for a remote hand-off, ms.
    pub remote_ms_per_mb: f64,
}

impl Default for TransferModel {
    /// Local ≈ tmpfs/page-cache hand-off (0.2 ms + 0.5 ms/MB ≈ 2 GB/s);
    /// remote ≈ object-storage round trip (5 ms + 10 ms/MB ≈ 100 MB/s).
    /// The ~20× gap is what makes locality matter for multi-MB DNN inputs.
    fn default() -> Self {
        TransferModel {
            local_base_ms: 0.2,
            local_ms_per_mb: 0.5,
            remote_base_ms: 5.0,
            remote_ms_per_mb: 10.0,
        }
    }
}

impl TransferModel {
    /// A zero-cost transfer model (for isolating scheduling effects).
    pub fn free() -> Self {
        TransferModel {
            local_base_ms: 0.0,
            local_ms_per_mb: 0.0,
            remote_base_ms: 0.0,
            remote_ms_per_mb: 0.0,
        }
    }

    /// Transfer latency for one local hand-off of `mb` megabytes.
    #[inline]
    pub fn local_ms(&self, mb: f64) -> f64 {
        self.local_base_ms + self.local_ms_per_mb * mb
    }

    /// Transfer latency for one remote hand-off of `mb` megabytes.
    #[inline]
    pub fn remote_ms(&self, mb: f64) -> f64 {
        self.remote_base_ms + self.remote_ms_per_mb * mb
    }

    /// Transfer latency for a hand-off, dispatching on locality.
    #[inline]
    pub fn ms(&self, mb: f64, local: bool) -> f64 {
        if local {
            self.local_ms(mb)
        } else {
            self.remote_ms(mb)
        }
    }

    /// Transfer latency for a batched task: each of the `batch` jobs moves
    /// its own `mb` input; the hand-offs share one base latency (they are
    /// issued together) but bandwidth is serialised.
    pub fn batch_ms(&self, mb: f64, batch: u32, local: bool) -> f64 {
        let (base, rate) = if local {
            (self.local_base_ms, self.local_ms_per_mb)
        } else {
            (self.remote_base_ms, self.remote_ms_per_mb)
        };
        base + rate * mb * batch as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_much_slower_than_local() {
        let t = TransferModel::default();
        // The deblur input (1.1 MB): local well under a ms of rate cost,
        // remote ~16 ms.
        assert!(t.remote_ms(1.1) > 10.0 * t.local_ms(1.1));
    }

    #[test]
    fn batch_scales_rate_not_base() {
        let t = TransferModel::default();
        let one = t.batch_ms(2.5, 1, false);
        let four = t.batch_ms(2.5, 4, false);
        assert!((four - one - 3.0 * 2.5 * t.remote_ms_per_mb).abs() < 1e-12);
    }

    #[test]
    fn dispatching_on_locality() {
        let t = TransferModel::default();
        assert_eq!(t.ms(2.0, true), t.local_ms(2.0));
        assert_eq!(t.ms(2.0, false), t.remote_ms(2.0));
    }

    #[test]
    fn free_model_is_zero() {
        let t = TransferModel::free();
        assert_eq!(t.batch_ms(10.0, 8, false), 0.0);
        assert_eq!(t.local_ms(3.0), 0.0);
    }

    #[test]
    fn monotone_in_size() {
        let t = TransferModel::default();
        assert!(t.remote_ms(2.0) > t.remote_ms(1.0));
        assert!(t.local_ms(2.0) > t.local_ms(1.0));
    }
}
