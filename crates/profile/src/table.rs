//! Precomputed performance profiles.
//!
//! "The Controller can estimate the times with performance profiles of the
//! functions and calculate the costs based on the unit costs of vCPU and
//! vGPU and the running times" (§3.3). A [`ProfileTable`] holds, for every
//! function, one [`ProfileEntry`] per grid configuration plus the per-stage
//! aggregates ESG's dual-blade pruning needs (minimum latency, minimum
//! cost, cost of the fastest configuration).

use crate::latency::latency_ms;
use esg_model::{AppSpec, Catalog, Config, ConfigGrid, FnId, PriceModel};

/// The profile of one configuration of one function.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProfileEntry {
    /// The configuration.
    pub config: Config,
    /// Mean task latency in ms (the whole batch).
    pub latency_ms: f64,
    /// Mean per-job latency in ms (`latency_ms / batch`).
    pub per_job_latency_ms: f64,
    /// Resource cost of the task in cents (`(c·p_c + g·p_g) · latency`).
    pub task_cost_cents: f64,
    /// Resource cost attributed to each job in cents (Fig. 3 arithmetic).
    pub per_job_cost_cents: f64,
}

/// All profiled configurations of one function, sorted ascending by task
/// latency (Algorithm 1: "the profiles of function j sorted in increasing
/// latency"), with a secondary view sorted by per-job cost.
#[derive(Clone, Debug)]
pub struct FunctionProfile {
    entries: Vec<ProfileEntry>,
    /// Indices into `entries`, ascending per-job cost.
    by_cost: Vec<u32>,
    /// The profile of the minimum configuration (1,1,1), regardless of grid.
    min_config_entry: ProfileEntry,
    min_latency_ms: f64,
    min_per_job_cost_cents: f64,
    fastest_per_job_cost_cents: f64,
}

impl FunctionProfile {
    fn build(
        spec: &esg_model::FunctionSpec,
        grid: &ConfigGrid,
        price: &PriceModel,
    ) -> FunctionProfile {
        let make = |config: Config| {
            let t = latency_ms(spec, config);
            ProfileEntry {
                config,
                latency_ms: t,
                per_job_latency_ms: t / config.batch as f64,
                task_cost_cents: price.task_cost_cents(config, t),
                per_job_cost_cents: price.per_job_cost_cents(config, t),
            }
        };
        let mut entries: Vec<ProfileEntry> = grid.iter().map(make).collect();
        entries.sort_by(|a, b| {
            a.latency_ms
                .total_cmp(&b.latency_ms)
                .then(a.per_job_cost_cents.total_cmp(&b.per_job_cost_cents))
        });
        let mut by_cost: Vec<u32> = (0..entries.len() as u32).collect();
        by_cost.sort_by(|&i, &j| {
            entries[i as usize]
                .per_job_cost_cents
                .total_cmp(&entries[j as usize].per_job_cost_cents)
        });
        let min_latency_ms = entries.first().expect("non-empty grid").latency_ms;
        let fastest_per_job_cost_cents =
            entries.first().expect("non-empty grid").per_job_cost_cents;
        let min_per_job_cost_cents = entries[by_cost[0] as usize].per_job_cost_cents;
        FunctionProfile {
            min_config_entry: make(Config::MIN),
            entries,
            by_cost,
            min_latency_ms,
            min_per_job_cost_cents,
            fastest_per_job_cost_cents,
        }
    }

    /// Entries ascending by task latency.
    #[inline]
    pub fn entries(&self) -> &[ProfileEntry] {
        &self.entries
    }

    /// Entries ascending by per-job cost.
    pub fn entries_by_cost(&self) -> impl Iterator<Item = &ProfileEntry> {
        self.by_cost.iter().map(move |&i| &self.entries[i as usize])
    }

    /// The profile of `Config::MIN` (present even if outside the grid).
    #[inline]
    pub fn min_config_entry(&self) -> &ProfileEntry {
        &self.min_config_entry
    }

    /// Fastest achievable task latency across the grid — the `tLow`
    /// component for stages not yet on a partial path (§3.3).
    #[inline]
    pub fn min_latency_ms(&self) -> f64 {
        self.min_latency_ms
    }

    /// Cheapest per-job cost across the grid — the `rscLow` component.
    #[inline]
    pub fn min_per_job_cost_cents(&self) -> f64 {
        self.min_per_job_cost_cents
    }

    /// Per-job cost of the fastest configuration — the `rscFastest`
    /// component.
    #[inline]
    pub fn fastest_per_job_cost_cents(&self) -> f64 {
        self.fastest_per_job_cost_cents
    }

    /// Looks up the entry for an exact configuration (linear scan; used by
    /// tests and the dispatcher's forced-minimum path).
    pub fn find(&self, config: Config) -> Option<&ProfileEntry> {
        self.entries.iter().find(|e| e.config == config)
    }

    /// Number of profiled configurations.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no configurations were profiled (cannot occur via
    /// [`ProfileTable::build`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Profiles for every function in a catalog over a shared configuration
/// grid.
#[derive(Clone, Debug)]
pub struct ProfileTable {
    profiles: Vec<FunctionProfile>,
    grid: ConfigGrid,
    price: PriceModel,
}

impl ProfileTable {
    /// Profiles every catalog function over `grid` with `price`.
    pub fn build(catalog: &Catalog, grid: &ConfigGrid, price: &PriceModel) -> ProfileTable {
        let profiles = catalog
            .iter()
            .map(|(_, spec)| FunctionProfile::build(spec, grid, price))
            .collect();
        ProfileTable {
            profiles,
            grid: grid.clone(),
            price: *price,
        }
    }

    /// The profile of one function.
    #[inline]
    pub fn profile(&self, f: FnId) -> &FunctionProfile {
        &self.profiles[f.index()]
    }

    /// The grid the table was built over.
    #[inline]
    pub fn grid(&self) -> &ConfigGrid {
        &self.grid
    }

    /// The price model the costs were computed with.
    #[inline]
    pub fn price(&self) -> &PriceModel {
        &self.price
    }

    /// Number of profiled functions.
    #[inline]
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True when the table has no functions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The application's base latency `L` (§4.1): the critical-path time at
    /// the minimum configuration, running alone. For the paper's linear
    /// pipelines this is the plain sum of stage times.
    pub fn base_latency_ms(&self, app: &AppSpec) -> f64 {
        // Longest path over min-config stage latencies (DP in topological
        // order computed by Kahn's algorithm; app DAGs are tiny).
        let n = app.num_stages();
        let mut indeg = vec![0usize; n];
        for &(_, b) in &app.edges {
            indeg[b] += 1;
        }
        let mut ready: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let stage_ms: Vec<f64> = (0..n)
            .map(|v| self.profile(app.nodes[v]).min_config_entry().latency_ms)
            .collect();
        let mut dist: Vec<f64> = stage_ms.clone();
        let mut processed = 0usize;
        while let Some(v) = ready.pop() {
            processed += 1;
            for &(a, b) in &app.edges {
                if a == v {
                    if dist[v] + stage_ms[b] > dist[b] {
                        dist[b] = dist[v] + stage_ms[b];
                    }
                    indeg[b] -= 1;
                    if indeg[b] == 0 {
                        ready.push(b);
                    }
                }
            }
        }
        assert_eq!(processed, n, "application DAG must be acyclic");
        dist.into_iter().fold(0.0, f64::max)
    }

    /// Per-stage task latencies across the full grid, for ANL labelling:
    /// `times[stage][k]` is stage `stage`'s latency under the `k`-th grid
    /// configuration.
    pub fn stage_times(&self, app: &AppSpec) -> Vec<Vec<f64>> {
        app.nodes
            .iter()
            .map(|&f| {
                self.grid
                    .iter()
                    .map(|cfg| {
                        self.profile(f)
                            .find(cfg)
                            .map(|e| e.latency_ms)
                            .unwrap_or_else(|| {
                                // The grid is shared, so every config is in
                                // the profile; defensive fallback computes it.
                                unreachable!("grid config must be profiled")
                            })
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esg_model::{standard_apps, standard_catalog};

    fn table() -> ProfileTable {
        ProfileTable::build(
            &standard_catalog(),
            &ConfigGrid::default(),
            &PriceModel::default(),
        )
    }

    #[test]
    fn entries_sorted_by_latency() {
        let t = table();
        for f in 0..t.len() {
            let p = t.profile(FnId(f as u32));
            assert_eq!(p.len(), ConfigGrid::default().len());
            for w in p.entries().windows(2) {
                assert!(w[0].latency_ms <= w[1].latency_ms);
            }
        }
    }

    #[test]
    fn by_cost_sorted() {
        let t = table();
        let p = t.profile(FnId(0));
        let costs: Vec<f64> = p.entries_by_cost().map(|e| e.per_job_cost_cents).collect();
        for w in costs.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!((costs[0] - p.min_per_job_cost_cents()).abs() < 1e-12);
    }

    #[test]
    fn bounds_are_consistent() {
        let t = table();
        for f in 0..t.len() {
            let p = t.profile(FnId(f as u32));
            assert!(p.min_latency_ms() <= p.min_config_entry().latency_ms);
            assert!(p.min_per_job_cost_cents() <= p.fastest_per_job_cost_cents());
            // The fastest config's cost is an actual entry cost.
            let fastest = &p.entries()[0];
            assert_eq!(p.fastest_per_job_cost_cents(), fastest.per_job_cost_cents);
        }
    }

    #[test]
    fn min_config_entry_matches_table3() {
        let t = table();
        let cat = standard_catalog();
        for (id, spec) in cat.iter() {
            let e = t.profile(id).min_config_entry();
            assert!((e.latency_ms - spec.exec_ms).abs() < 1e-9);
            assert_eq!(e.config, Config::MIN);
        }
    }

    #[test]
    fn base_latency_of_linear_apps_is_stage_sum() {
        let t = table();
        let cat = standard_catalog();
        for app in standard_apps() {
            let l = t.base_latency_ms(&app);
            let sum: f64 = app.nodes.iter().map(|&f| cat.get(f).exec_ms).sum();
            assert!((l - sum).abs() < 1e-9, "{}: {l} vs {sum}", app.name);
        }
    }

    #[test]
    fn base_latency_of_diamond_is_critical_path() {
        let t = table();
        // deblur(319) -> {super_res(86), segmentation(293)} -> classification(147)
        let app = AppSpec::dag(
            "diamond",
            vec![
                esg_model::catalog::functions::DEBLUR,
                esg_model::catalog::functions::SUPER_RESOLUTION,
                esg_model::catalog::functions::SEGMENTATION,
                esg_model::catalog::functions::CLASSIFICATION,
            ],
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
        );
        let l = t.base_latency_ms(&app);
        assert!((l - (319.0 + 293.0 + 147.0)).abs() < 1e-9, "{l}");
    }

    #[test]
    fn stage_times_shape() {
        let t = table();
        let app = &standard_apps()[3]; // 5 stages
        let times = t.stage_times(app);
        assert_eq!(times.len(), 5);
        assert!(times.iter().all(|row| row.len() == t.grid().len()));
        assert!(times.iter().flatten().all(|&x| x > 0.0));
    }

    #[test]
    fn find_config() {
        let t = table();
        let p = t.profile(FnId(2));
        let e = p.find(Config::new(4, 2, 2)).expect("in grid");
        assert_eq!(e.config, Config::new(4, 2, 2));
        assert!(p.find(Config::new(3, 2, 2)).is_none()); // batch 3 not in grid
    }

    #[test]
    fn per_job_fields_consistent() {
        let t = table();
        for f in 0..t.len() {
            for e in t.profile(FnId(f as u32)).entries() {
                assert!((e.per_job_latency_ms * e.config.batch as f64 - e.latency_ms).abs() < 1e-9);
                assert!(
                    (e.per_job_cost_cents * e.config.batch as f64 - e.task_cost_cents).abs() < 1e-9
                );
            }
        }
    }
}
