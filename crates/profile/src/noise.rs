//! Execution-time noise (§4: "the emulations add Gaussian noises to the
//! performance").
//!
//! Noise is multiplicative: an execution with mean latency `t` observes
//! `t · N(1, σ)` truncated to `1 ± kσ` (and floored at a small positive
//! factor, defensively). Truncation keeps the emulation free of negative
//! or absurd samples without distorting the distribution's bulk.

use esg_model::Gaussian;
use rand::Rng;

/// Multiplicative truncated-Gaussian noise on execution times.
#[derive(Clone, Debug)]
pub struct NoiseModel {
    sigma: f64,
    clamp_k: f64,
    gaussian: Gaussian,
}

impl Default for NoiseModel {
    /// σ = 0.08, truncated at ±3σ — moderate serverless jitter, in line
    /// with the variability motivating ESG's adaptive re-scheduling (§1).
    fn default() -> Self {
        NoiseModel::new(0.08)
    }
}

impl NoiseModel {
    /// Creates a noise model with relative standard deviation `sigma`
    /// (truncation at ±3σ).
    pub fn new(sigma: f64) -> Self {
        NoiseModel::with_clamp(sigma, 3.0)
    }

    /// Creates a noise model with explicit truncation width `clamp_k` (in
    /// standard deviations).
    pub fn with_clamp(sigma: f64, clamp_k: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        assert!(clamp_k > 0.0, "clamp width must be positive");
        NoiseModel {
            sigma,
            clamp_k,
            gaussian: Gaussian::new(1.0, sigma),
        }
    }

    /// The zero-noise model (deterministic executions; used by ablations
    /// and search-quality tests).
    pub fn none() -> Self {
        NoiseModel::with_clamp(0.0, 1.0)
    }

    /// The relative standard deviation.
    #[inline]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws a noise factor around 1.0.
    pub fn factor<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        let f = self.gaussian.sample_clamped(rng, self.clamp_k);
        f.max(0.05)
    }

    /// Applies noise to a mean latency.
    #[inline]
    pub fn noisy_ms<R: Rng + ?Sized>(&mut self, mean_ms: f64, rng: &mut R) -> f64 {
        mean_ms * self.factor(rng)
    }

    /// The one-sided 95th-percentile factor `1 + 1.645σ` — Orion sizes
    /// configurations against P95 latency (§4.2), which under this noise
    /// model is `mean × p95_factor`.
    #[inline]
    pub fn p95_factor(&self) -> f64 {
        1.0 + 1.645 * self.sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn factors_center_on_one() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = NoiseModel::default();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| m.factor(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean factor {mean}");
    }

    #[test]
    fn truncation_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut m = NoiseModel::new(0.1);
        for _ in 0..50_000 {
            let f = m.factor(&mut rng);
            assert!((1.0 - 0.3 - 1e-12..=1.0 + 0.3 + 1e-12).contains(&f), "{f}");
        }
    }

    #[test]
    fn zero_noise_is_identity() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut m = NoiseModel::none();
        assert_eq!(m.noisy_ms(123.0, &mut rng), 123.0);
        assert_eq!(m.sigma(), 0.0);
        assert_eq!(m.p95_factor(), 1.0);
    }

    #[test]
    fn p95_factor_formula() {
        let m = NoiseModel::new(0.08);
        assert!((m.p95_factor() - (1.0 + 1.645 * 0.08)).abs() < 1e-12);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = || {
            let mut rng = StdRng::seed_from_u64(11);
            let mut m = NoiseModel::default();
            (0..8).map(|_| m.factor(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_rejected() {
        let _ = NoiseModel::new(-0.1);
    }
}
