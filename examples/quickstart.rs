//! Quickstart: run ESG_1Q on the image-classification pipeline and read
//! the configuration priority queue it produces — the paper's Fig. 3
//! walk-through, on real profile data.
//!
//! Run with: `cargo run --release --example quickstart`
//! (`ESG_SMOKE=1` shrinks the end-to-end run for CI.)

use esg::core::{astar_search, brute_force, StageTable};
use esg::prelude::*;

fn main() {
    let smoke = std::env::var("ESG_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");

    // The paper's standard platform behind the validating builder: a
    // bad knob or churn script comes back as a typed SimError here,
    // instead of a panic deep inside the event loop.
    let sim = SimBuilder::new(SloClass::Moderate)
        .warmup_exclude_ms(if smoke { 1_000.0 } else { 15_000.0 }) // steady-state measurement
        .build()
        .expect("the standard configuration is valid");
    let env = sim.env();
    let app = &env.apps[0]; // super-resolution -> segmentation -> classification
    println!("application: {}", app.name);

    let l = env.base_latency_ms(AppId(0));
    let slo = env.slo_ms(AppId(0));
    println!("base latency L = {l:.0} ms, moderate SLO = {slo:.0} ms");

    // ESG_1Q over the three stages, batch unconstrained, K = 5.
    let table = StageTable::build(&app.nodes, &env.profiles, 8);
    let result = astar_search(&table, slo, 5);
    println!(
        "\nESG_1Q (A* + dual-blade pruning): {} expansions, feasible = {}",
        result.expansions, result.feasible
    );
    println!("configuration priority queue (cheapest first):");
    for (rank, path) in result.paths.iter().enumerate() {
        let cfgs: Vec<String> = path.configs.iter().map(|c| c.to_string()).collect();
        println!(
            "  #{rank}: {}  time {:.0} ms, {:.4} cents/job",
            cfgs.join(" -> "),
            path.time_ms,
            path.cost_cents
        );
    }

    // Cross-check the optimum against exhaustive search (the 5.3 oracle).
    let oracle = brute_force(&table, slo, 1);
    println!(
        "\nbrute force agrees: {:.4} cents/job over {} expansions ({}x more work)",
        oracle.paths[0].cost_cents,
        oracle.expansions,
        oracle.expansions / result.expansions.max(1)
    );
    assert!((oracle.paths[0].cost_cents - result.paths[0].cost_cents).abs() < 1e-9);

    // And run a small end-to-end simulation with the full scheduler.
    let n = if smoke { 150 } else { 1500 };
    let workload =
        WorkloadGen::new(WorkloadClass::Normal, esg::model::standard_app_ids(), 7).generate(n);
    let mut esg = EsgScheduler::new();
    let r = sim.run(&mut esg, &workload, "quickstart");
    println!(
        "\nend-to-end: {} invocations, SLO hit rate {:.1}%, cost {:.2} cents",
        r.total_completed(),
        r.avg_hit_rate() * 100.0,
        r.total_cost_cents()
    );
}
