//! Live queue dashboard: periodic per-queue latency/backlog/shed
//! snapshots (plus cross-shard conflict counters) collected from a run
//! by wrapping the scheduler in `Monitored`, rendered as a text
//! dashboard and a CSV under `bench_results/`.
//!
//! Run with: `cargo run --release --example queue_dashboard [seconds]`
//! (`ESG_SMOKE=1` defaults to a 20-second run for CI.)

use esg::prelude::*;
use esg_bench::{dashboard_csv_header, dashboard_csv_rows, render_dashboard_text, write_csv};

fn main() {
    let smoke = std::env::var("ESG_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let seconds: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 20.0 } else { 60.0 });
    let scenario = Scenario::MODERATE_NORMAL;
    let workload = WorkloadGen::new(scenario.workload, esg::model::standard_app_ids(), 42)
        .generate_for(seconds * 1000.0);
    println!(
        "{} invocations over {seconds:.0} s of {scenario} arrivals",
        workload.len()
    );

    // Two controller shards so the dashboard's shard column and the
    // conflict counters show live values, not a single-driver's zeros.
    let cfg = SimConfig {
        shards: 2,
        ..SimConfig::default()
    };
    let env = SimEnv::standard(scenario.slo);
    // Snapshot every 10 simulated seconds; the monitor maps queues to
    // shards with the same stable hash the control plane uses.
    let mut monitored = Monitored::new(Box::new(EsgScheduler::new()), 10_000.0, cfg.shards);
    let result = run_simulation(&env, cfg, &mut monitored, &workload, "dashboard");
    let snapshots = monitored.monitor.finish(result.makespan_ms);

    // Terminal view: the full series in smoke mode is noisy, so print
    // the first and last snapshots — the CSV has every one.
    let shown: Vec<HealthSnapshot> = match snapshots.as_slice() {
        [first, .., last] if snapshots.len() > 2 => vec![first.clone(), last.clone()],
        other => other.to_vec(),
    };
    println!("\n{}", render_dashboard_text(&shown));
    println!(
        "({} snapshots total; hit rate {:.1}%, {} dispatches, {} shed)",
        snapshots.len(),
        result.avg_hit_rate() * 100.0,
        result.dispatches,
        result.shed_jobs,
    );
    write_csv(
        "DASHBOARD_queue_health",
        dashboard_csv_header(),
        &dashboard_csv_rows(&snapshots),
    );
}
