//! Custom DAG application: a diamond workflow (split/join) showing the
//! dominator-based SLO distribution (paper 3.3, Fig. 4) and the simulator
//! handling parallel branches.
//!
//! Run with: `cargo run --release --example custom_pipeline`
//! (`ESG_SMOKE=1` shrinks the run for CI.)

use esg::dag::{average_normalized_length, Dag, DominatorTree, Hierarchy, SloPlan};
use esg::model::catalog::functions as f;
use esg::prelude::*;

fn main() -> Result<(), SimError> {
    let smoke = std::env::var("ESG_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");

    // deblur -> {super-resolution, segmentation} -> classification
    let app = AppSpec::dag(
        "diamond_classification",
        vec![
            f::DEBLUR,
            f::SUPER_RESOLUTION,
            f::SEGMENTATION,
            f::CLASSIFICATION,
        ],
        vec![(0, 1), (0, 2), (1, 3), (2, 3)],
    );
    let dag = Dag::from_app(&app).expect("valid DAG");

    // Dominator tree (the backbone of the SLO distribution).
    let domtree = DominatorTree::build(&dag);
    println!("dominator tree:");
    for v in 0..dag.len() {
        println!(
            "  node {v} ({}) idom = {:?}",
            ["deblur", "super_res", "segmentation", "classification"][v],
            domtree.idom(v)
        );
    }

    // Hierarchical reduction: the DAG collapses to chain-parallel-chain.
    let h = Hierarchy::build(&dag).expect("hierarchically reducible");
    println!(
        "\nreduced hierarchy: {} top-level items, nesting depth {}",
        h.items.len(),
        h.nesting_depth()
    );

    // The builder validates the custom-app environment (an empty or
    // stage-less app list is a typed SimError, not a later panic); `?`
    // surfaces any rejection.
    let sim = SimBuilder::new(SloClass::Moderate)
        .apps(vec![app.clone()])
        .warmup_exclude_ms(if smoke { 1_000.0 } else { 15_000.0 })
        .build()?;

    // ANL labelling from the profile substrate and the SLO plan.
    let times = sim.env().profiles.stage_times(&app);
    let anl = average_normalized_length(&times);
    println!("\nANL labels: {anl:?}");
    let plan = SloPlan::build(&dag, &anl, 3).expect("plan");
    println!("SLO groups (g = 3):");
    for (i, g) in plan.groups().iter().enumerate() {
        println!(
            "  group {i}: stages {:?} get {:.1}% of the SLO",
            g.members,
            g.fraction * 100.0
        );
    }

    // Simulate the custom app end to end under ESG. A single application
    // receives the whole arrival stream, so use the light class to keep
    // the one pipeline inside cluster capacity.
    let n = if smoke { 150 } else { 1200 };
    let workload = WorkloadGen::new(WorkloadClass::Light, vec![AppId(0)], 11).generate(n);
    let mut esg = EsgScheduler::new();
    let r = sim.run(&mut esg, &workload, "diamond");
    println!(
        "\nsimulated {} invocations: SLO hit rate {:.1}%, mean latency {:.0} ms \
         (SLO {:.0} ms), {:.1}% local hand-offs",
        r.total_completed(),
        r.avg_hit_rate() * 100.0,
        r.apps[0].mean_latency_ms(),
        r.apps[0].slo_ms,
        r.locality_rate() * 100.0
    );
    Ok(())
}
