//! Azure-like trace replay: a diurnal, bursty arrival trace (the synthetic
//! stand-in for the Azure Functions traces the paper derives its rates
//! from) driven through the platform under ESG.
//!
//! Run with: `cargo run --release --example trace_replay [minutes]`
//! (`ESG_SMOKE=1` defaults to a 1-minute replay for CI.)

use esg::prelude::*;

fn main() {
    let smoke = std::env::var("ESG_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let minutes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 1 } else { 3 });
    let trace = AzureLikeTrace {
        mean_per_minute: 1500.0,
        diurnal_amplitude: 0.5,
        period_minutes: 8.0, // compressed "day" so the demo shows a cycle
        burst_probability: 0.1,
        burst_multiplier: 2.5,
        seed: 5,
    };
    let rates = trace.rates(minutes);
    println!(
        "per-minute arrival rates: {:?}",
        rates.iter().map(|r| r.round() as u64).collect::<Vec<_>>()
    );

    let workload = trace.generate(minutes, &esg::model::standard_app_ids());
    println!("{} invocations over {minutes} min", workload.len());

    let sim = SimBuilder::new(SloClass::Relaxed)
        .warmup_exclude_ms(if smoke { 5_000.0 } else { 20_000.0 })
        .build()
        .expect("the standard configuration is valid");
    let mut esg = EsgScheduler::new();
    let r = sim.run(&mut esg, &workload, "trace");
    println!(
        "ESG on the trace: hit rate {:.1}%, {:.4} cents/invocation, mean batch {:.2}, \
         {:.0}% local hand-offs, GPU util {:.0}%",
        r.avg_hit_rate() * 100.0,
        r.cost_per_invocation_cents(),
        r.batch_size.mean(),
        r.locality_rate() * 100.0,
        r.vgpu_utilisation * 100.0
    );
    for a in &r.apps {
        println!(
            "  {:<32} hit {:>5.1}%  p95 {:>6.0} ms (SLO {:.0})",
            a.name,
            a.hit_rate() * 100.0,
            a.latency_percentile(95.0).unwrap_or(0.0),
            a.slo_ms
        );
    }
}
