//! Pre-warming demo: the EWMA proxy (paper section 4) predicting
//! invocation intervals and hiding cold starts, versus a platform without
//! it.
//!
//! Run with: `cargo run --release --example prewarm_demo`

use esg::prelude::*;
use esg::workload::ArrivalPredictor;

fn main() {
    // The predictor on its own: periodic arrivals.
    let mut p = ArrivalPredictor::new(0.3);
    for i in 0..10 {
        p.observe(i as f64 * 120.0);
    }
    println!(
        "after 10 arrivals at ~120 ms: predicted interval {:.1} ms, next at {:.0} ms",
        p.predicted_interval_ms().expect("trained"),
        p.predicted_next_ms().expect("trained"),
    );
    let deblur_cold = standard_catalog()
        .get(esg::model::catalog::functions::DEBLUR)
        .cold_start_ms;
    println!(
        "deblur cold start is {deblur_cold:.0} ms -> proxy would begin warming at {:.0} ms",
        p.prewarm_at_ms(deblur_cold, 1080.0).expect("trained")
    );

    // Platform effect: same workload, pre-warming on vs off. The cluster
    // starts with one warm container per (node, function); under load the
    // proxy's job is growing pools ahead of concurrency spikes.
    let env = SimEnv::standard(SloClass::Relaxed);
    let workload = WorkloadGen::new(WorkloadClass::Normal, esg::model::standard_app_ids(), 3)
        .generate_for(120_000.0);
    println!("\n{} invocations over 120 s:", workload.len());
    for (label, prewarm) in [("with pre-warming", true), ("without", false)] {
        let cfg = SimConfig {
            prewarm,
            ..SimConfig::default()
        };
        let mut esg = EsgScheduler::new();
        let r = run_simulation(&env, cfg, &mut esg, &workload, label);
        println!(
            "  {label:<18} cold starts {:>4} ({:>4.1}%), hit rate {:>5.1}%, mean latency {:>6.0} ms",
            r.cold_starts,
            r.cold_start_rate() * 100.0,
            r.avg_hit_rate() * 100.0,
            r.apps.iter().map(|a| a.mean_latency_ms()).sum::<f64>() / r.apps.len() as f64
        );
    }
}
