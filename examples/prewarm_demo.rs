//! Pre-warming demo: the EWMA proxy (paper section 4) predicting
//! invocation intervals and hiding cold starts, versus a platform without
//! it.
//!
//! Run with: `cargo run --release --example prewarm_demo`
//! (`ESG_SMOKE=1` shrinks the run for CI.)

use esg::prelude::*;
use esg::workload::ArrivalPredictor;

fn main() {
    let smoke = std::env::var("ESG_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");

    // The predictor on its own: periodic arrivals.
    let mut p = ArrivalPredictor::new(0.3);
    for i in 0..10 {
        p.observe(i as f64 * 120.0);
    }
    println!(
        "after 10 arrivals at ~120 ms: predicted interval {:.1} ms, next at {:.0} ms",
        p.predicted_interval_ms().expect("trained"),
        p.predicted_next_ms().expect("trained"),
    );
    let deblur_cold = standard_catalog()
        .get(esg::model::catalog::functions::DEBLUR)
        .cold_start_ms;
    println!(
        "deblur cold start is {deblur_cold:.0} ms -> proxy would begin warming at {:.0} ms",
        p.prewarm_at_ms(deblur_cold, 1080.0).expect("trained")
    );

    // Platform effect: same workload, pre-warming on vs off. The cluster
    // starts with one warm container per (node, function); under load the
    // proxy's job is growing pools ahead of concurrency spikes.
    let span_ms = if smoke { 20_000.0 } else { 120_000.0 };
    let workload = WorkloadGen::new(WorkloadClass::Normal, esg::model::standard_app_ids(), 3)
        .generate_for(span_ms);
    println!(
        "\n{} invocations over {:.0} s:",
        workload.len(),
        span_ms / 1000.0
    );
    for (label, prewarm) in [("with pre-warming", true), ("without", false)] {
        let sim = SimBuilder::new(SloClass::Relaxed)
            .prewarm(prewarm)
            .build()
            .expect("the standard configuration is valid");
        let mut esg = EsgScheduler::new();
        let r = sim.run(&mut esg, &workload, label);
        println!(
            "  {label:<18} cold starts {:>4} ({:>4.1}%), hit rate {:>5.1}%, mean latency {:>6.0} ms",
            r.cold_starts,
            r.cold_start_rate() * 100.0,
            r.avg_hit_rate() * 100.0,
            r.apps.iter().map(|a| a.mean_latency_ms()).sum::<f64>() / r.apps.len() as f64
        );
    }
}
