//! Compare ESG with the four baselines on one scenario, then ESG's
//! composable round-policy stacks against classic ESG.
//!
//! A scaled-down version of the paper's Fig. 6: every scheduler runs the
//! same workload on the same platform; only the scheduling algorithm
//! differs (§4.2). The second table selects round policies through the
//! `SimBuilder::policy(...)` knob: SLO-aware admission (sheds provably
//! hopeless queues), ESG cross-queue packing (GSLO-tightness ranking
//! under one shared search budget), and their stack.
//!
//! Run with: `cargo run --release --example compare_schedulers [scenario]`
//! where scenario is `strict-light` (default), `moderate-normal`, or
//! `relaxed-heavy`. (`ESG_SMOKE=1` shrinks the run for CI.)

use esg::prelude::*;

fn main() {
    let smoke = std::env::var("ESG_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let arg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "strict-light".into());
    let scenario = match arg.as_str() {
        "strict-light" => Scenario::STRICT_LIGHT,
        "moderate-normal" => Scenario::MODERATE_NORMAL,
        "relaxed-heavy" => Scenario::RELAXED_HEAVY,
        other => {
            eprintln!("unknown scenario {other}; using strict-light");
            Scenario::STRICT_LIGHT
        }
    };
    let n_arrivals = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 120 } else { 600 });

    let sim = SimBuilder::new(scenario.slo)
        .build()
        .expect("the standard configuration is valid");
    let workload = WorkloadGen::new(scenario.workload, esg::model::standard_app_ids(), 42)
        .generate(n_arrivals);
    println!(
        "scenario {scenario}: {} invocations over {:.1}s",
        workload.len(),
        workload.span_ms() / 1000.0
    );

    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(EsgScheduler::new()),
        Box::new(InflessScheduler::new()),
        Box::new(FastGShareScheduler::new()),
        Box::new(OrionScheduler::default()),
        Box::new(AquatopeScheduler::default()),
    ];

    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>9} {:>9} {:>8} {:>8}",
        "scheduler", "SLO-hit%", "cost(¢)", "¢/invoc", "miss%", "cold%", "local%", "ovh(ms)"
    );
    let mut esg_cost = None;
    for s in schedulers.iter_mut() {
        let r = sim.run(s.as_mut(), &workload, &scenario.to_string());
        let norm = *esg_cost.get_or_insert(r.total_cost_cents());
        println!(
            "{:<12} {:>7.1}% {:>10.1} {:>10.3} {:>8.1}% {:>8.1}% {:>7.1}% {:>8.2}  (cost vs ESG: {:.2}x)",
            r.scheduler,
            r.avg_hit_rate() * 100.0,
            r.total_cost_cents(),
            r.cost_per_invocation_cents(),
            r.config_miss_rate() * 100.0,
            r.cold_start_rate() * 100.0,
            r.locality_rate() * 100.0,
            r.mean_overhead_ms(),
            r.total_cost_cents() / norm,
        );
    }

    // Round-policy stacks, selected through the builder knob. Each run
    // installs the spec via Scheduler::adopt_policy; the classic row is
    // the same contract as the table above.
    println!(
        "\nESG round-policy stacks (builder knob):\n{:<12} {:>8} {:>7} {:>10} {:>9}",
        "policy", "SLO-hit%", "shed%", "¢/invoc", "deferred"
    );
    for spec in [
        PolicySpec::Classic,
        PolicySpec::slo_admission(),
        PolicySpec::packing(),
        PolicySpec::packing_with_admission(),
    ] {
        let sim = SimBuilder::new(scenario.slo)
            .policy(spec)
            .build()
            .expect("valid policy spec");
        let mut esg = EsgScheduler::new();
        let r = sim
            .try_run(&mut esg, &workload, &scenario.to_string())
            .expect("EsgScheduler supports every built-in policy");
        println!(
            "{:<12} {:>7.1}% {:>6.1}% {:>10.3} {:>9}",
            spec.label(),
            r.avg_hit_rate() * 100.0,
            r.shed_rate() * 100.0,
            r.cost_per_invocation_cents(),
            r.scheduler_stats.policy.queues_deferred,
        );
    }

    // Incompatible combos are typed errors, not panics: MinScheduler has
    // no policy stack, so a packing spec is rejected up front.
    let packing_sim = SimBuilder::new(scenario.slo)
        .policy(PolicySpec::packing())
        .build()
        .expect("valid policy spec");
    let err = packing_sim
        .try_run(&mut MinScheduler, &workload, "combo-check")
        .expect_err("MinScheduler cannot run a packing stack");
    println!("\nincompatible combo check: {err}");
}
