//! Compare ESG with the four baselines on one scenario.
//!
//! A scaled-down version of the paper's Fig. 6: every scheduler runs the
//! same workload on the same platform; only the scheduling algorithm
//! differs (§4.2).
//!
//! Run with: `cargo run --release --example compare_schedulers [scenario]`
//! where scenario is `strict-light` (default), `moderate-normal`, or
//! `relaxed-heavy`. (`ESG_SMOKE=1` shrinks the run for CI.)

use esg::prelude::*;

fn main() {
    let smoke = std::env::var("ESG_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let arg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "strict-light".into());
    let scenario = match arg.as_str() {
        "strict-light" => Scenario::STRICT_LIGHT,
        "moderate-normal" => Scenario::MODERATE_NORMAL,
        "relaxed-heavy" => Scenario::RELAXED_HEAVY,
        other => {
            eprintln!("unknown scenario {other}; using strict-light");
            Scenario::STRICT_LIGHT
        }
    };
    let n_arrivals = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 120 } else { 600 });

    let sim = SimBuilder::new(scenario.slo)
        .build()
        .expect("the standard configuration is valid");
    let workload = WorkloadGen::new(scenario.workload, esg::model::standard_app_ids(), 42)
        .generate(n_arrivals);
    println!(
        "scenario {scenario}: {} invocations over {:.1}s",
        workload.len(),
        workload.span_ms() / 1000.0
    );

    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(EsgScheduler::new()),
        Box::new(InflessScheduler::new()),
        Box::new(FastGShareScheduler::new()),
        Box::new(OrionScheduler::default()),
        Box::new(AquatopeScheduler::default()),
    ];

    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>9} {:>9} {:>8} {:>8}",
        "scheduler", "SLO-hit%", "cost(¢)", "¢/invoc", "miss%", "cold%", "local%", "ovh(ms)"
    );
    let mut esg_cost = None;
    for s in schedulers.iter_mut() {
        let r = sim.run(s.as_mut(), &workload, &scenario.to_string());
        let norm = *esg_cost.get_or_insert(r.total_cost_cents());
        println!(
            "{:<12} {:>7.1}% {:>10.1} {:>10.3} {:>8.1}% {:>8.1}% {:>7.1}% {:>8.2}  (cost vs ESG: {:.2}x)",
            r.scheduler,
            r.avg_hit_rate() * 100.0,
            r.total_cost_cents(),
            r.cost_per_invocation_cents(),
            r.config_miss_rate() * 100.0,
            r.cold_start_rate() * 100.0,
            r.locality_rate() * 100.0,
            r.mean_overhead_ms(),
            r.total_cost_cents() / norm,
        );
    }
}
